(** The analysis driver: run every static pass over a program and collect
    findings plus the cost model.

    Analyses (all purely over the {!Sm_ir.Program} IR):
    - {b nondeterminism taint} — any-merges in reachable scripts, with an
      exact provenance chain from the merge site through the spawn tree to
      the root digest; mid-run key minting ([Mint] steps).
    - {b structural hazards} — children left to the implicit MergeAll,
      aborts that can discard worked subtrees, syncs under validated
      merges, unreachable scripts.
    - {b merge-order dependence / conflict prediction} — per-key sibling
      write-set analysis against the derived commutation matrices
      ({!Matrix}).
    - {b cost} — transform-call and journal-byte upper bounds ({!Cost}).

    Soundness contract (checked end-to-end by the agreement harness in
    [lib/fuzz]): static reachability over-approximates dynamic execution, so
    a report with {!Finding.guarantees_detsan_clean} is DetSan-clean on
    every run, and every dynamic hazard class has a twin finding class. *)

type report =
  { program : Sm_ir.Program.t
  ; model : Model.t
  ; findings : Finding.t list  (** severity-major, then task/step order *)
  ; cost : Cost.t
  }

val analyze : ?matrix_depth:int -> ?compaction:bool -> Sm_ir.Program.t -> report
(** [matrix_depth] (default 1) is the enumeration budget for {!Matrix};
    [compaction] (default true) is passed to {!Cost.analyze}. *)

val verdict : report -> Finding.verdict

val summary : report -> string
(** One line — verdict, finding counts, transform-call bound — embedded in
    [sm-fuzz] failure reports. *)

val pp_report : Format.formatter -> report -> unit
