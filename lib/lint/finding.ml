type severity =
  | Error
  | Warning
  | Note

let severity_name = function Error -> "error" | Warning -> "warning" | Note -> "note"

type t =
  { cls : string
  ; severity : severity
  ; task : int
  ; step : int
  ; detail : string
  ; provenance : string list
  ; pinned : string option
  ; twin : string option
  }

let classes =
  [ ( "nondet-merge"
    , Error
    , Some "nondet-merge"
    , "a merge_any/merge_any_from_set result flows into the digested root state" )
  ; ( "key-after-spawn"
    , Error
    , Some "key-in-task"
    , "a workspace key is minted while tasks can be live (mint step)" )
  ; ( "unmerged-children"
    , Note
    , Some "unmerged-children"
    , "a spawned/cloned child has no later merge in its parent script and is left to the \
       interpreter's implicit MergeAll epilogue" )
  ; ( "merge-order"
    , Warning
    , None
    , "sibling write-sets share a key whose op classes do not converge under both merge orders: \
       a MergeAllFromSet outcome depends on the set order" )
  ; ( "conflict"
    , Note
    , None
    , "concurrent writes on one key will force OT transforms at merge (convergent, but not free)" )
  ; ( "op-after-abort"
    , Note
    , Some "op-after-digest"
    , "an abort can discard a child subtree that performed operations" )
  ; ( "sync-under-validate"
    , Note
    , None
    , "a sync inside a subtree merged with ?validate: a refusal re-parks the child for a later \
       merge attempt" )
  ; ("unreachable-task", Note, None, "no spawn/clone path from the root reaches this script")
  ]

let class_doc cls =
  List.find_map (fun (c, _, _, doc) -> if String.equal c cls then Some doc else None) classes

let class_twin cls =
  List.find_map (fun (c, _, twin, _) -> if String.equal c cls then twin else None) classes

let default_severity cls =
  match List.find_opt (fun (c, _, _, _) -> String.equal c cls) classes with
  | Some (_, sev, _, _) -> sev
  | None -> Note

let make ?(severity_override : severity option) ?(provenance = []) ?pinned ~cls ~task ~step detail
    =
  let severity = Option.value severity_override ~default:(default_severity cls) in
  { cls; severity; task; step; detail; provenance; pinned; twin = class_twin cls }

let pp ppf f =
  let where =
    if f.task < 0 then "program"
    else if f.step < 0 then Printf.sprintf "task %d" f.task
    else Printf.sprintf "task %d step %d" f.task f.step
  in
  Format.fprintf ppf "%s[%s] %s: %s" (severity_name f.severity) f.cls where f.detail;
  (match f.pinned with None -> () | Some id -> Format.fprintf ppf " (pinned: %s)" id);
  (match f.twin with None -> () | Some t -> Format.fprintf ppf " (detsan twin: %s)" t);
  List.iter (fun line -> Format.fprintf ppf "@.    %s" line) f.provenance

let pp_list ppf fs =
  List.iteri (fun i f -> (if i > 0 then Format.fprintf ppf "@."); pp ppf f) fs

(* --- verdicts ---------------------------------------------------------------- *)

type verdict =
  | Clean
  | Pinned_only
  | Dirty

let verdict_name = function
  | Clean -> "clean"
  | Pinned_only -> "clean-except-pinned"
  | Dirty -> "dirty"

(* Notes are advisory and never gate; errors and warnings do unless a
   registry known-issue pinned them. *)
let gates f = match f.severity with Error | Warning -> true | Note -> false

let verdict findings =
  let gating = List.filter gates findings in
  if List.exists (fun f -> f.pinned = None) gating then Dirty
  else if gating <> [] then Pinned_only
  else Clean

let verdict_exit_code = function Clean -> 0 | Pinned_only -> 3 | Dirty -> 1

(* The soundness contract half the agreement harness enforces: a program
   with no error-severity finding that has a dynamic twin must be
   DetSan-clean on every run.  Warnings (merge-order) and notes are
   deliberately excluded — they flag order-dependence and cost, which are
   deterministic. *)
let guarantees_detsan_clean findings =
  not (List.exists (fun f -> f.severity = Error && f.twin <> None) findings)

(* The completeness half: every dynamic hazard tag must be covered by some
   static finding's twin tag. *)
let covers_hazard findings ~tag =
  List.exists (fun f -> match f.twin with Some t -> String.equal t tag | None -> false) findings
