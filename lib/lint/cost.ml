module P = Sm_ir.Program

(* All arithmetic saturates (Model.sat_add/sat_mul): bounds stay bounds. *)
let ( +! ) = Model.sat_add
let ( *! ) = Model.sat_mul

(* How many pieces one journal op can become across a merge.  Splits happen
   when a concurrent insert lands strictly inside a range: text range
   deletes are capped at length 3 by the interpreter (<= 3 pieces), tree and
   list ops shift/split around one position (<= 2).  Scalars and element
   ops never split. *)
let split_factor = function
  | P.Text -> 3
  | P.Tree | P.List -> 2
  | P.Counter | P.Register | P.Set | P.Map | P.Queue | P.Stack -> 1

(* Post-compaction journal ceilings, from the interpreter's op semantics:
   counter adds fuse to one op, register assigns to the last one, map keys
   and set elements are drawn mod 8 so per-key/per-element fusion caps the
   journal at 8.  The other types have no useful static ceiling. *)
let compact_cap = function
  | P.Counter | P.Register -> Some 1
  | P.Map | P.Set -> Some 8
  | P.Text | P.List | P.Queue | P.Stack | P.Tree -> None

(* Rough serialized bytes per journal op (tag + payload ints/strings) — a
   reporting estimate, not a gated bound. *)
let op_bytes = function
  | P.Counter -> 9
  | P.Register -> 16
  | P.Text -> 24
  | P.List -> 16
  | P.Set -> 12
  | P.Map -> 24
  | P.Queue -> 12
  | P.Stack -> 12
  | P.Tree -> 32

type script_cost =
  { idx : int
  ; instances : int
  ; attempts : int
  ; child_ops : int
  ; calls : int
  ; bytes : int
  }

type t =
  { tasks : int
  ; compaction : bool
  ; scripts : script_cost list
  ; total_calls : int
  ; total_bytes : int
  }

(* Zero-transform types: every op-class pair carries the [commutes] hint, so
   [Control.cross]'s fast path never invokes a transform.  Derived from the
   same matrices the merge-order analysis uses. *)
let zero_transform ty =
  match Matrix.for_name (P.ty_name ty) with Some m -> Matrix.all_commute m | None -> false

let analyze ?(compaction = true) (m : Model.t) =
  let p = m.Model.program in
  let n = m.Model.n in
  (* jb.(idx).(tyi): upper bound on the (compacted) journal ops of that type
     one instance of script [idx]'s task ships to its parent — own ops plus
     split-inflated child journals, capped by compaction where a ceiling
     exists.  Targets strictly increase, so a descending pass suffices. *)
  let jb = Array.make n [||] in
  for idx = n - 1 downto 0 do
    let row = Array.make Model.nty 0 in
    List.iteri
      (fun ti ty ->
        let from_children =
          List.fold_left
            (fun acc (e : Model.edge) ->
              acc +! (split_factor ty *! jb.(e.target).(ti)))
            0 m.Model.edges.(idx)
        in
        let raw = Model.own m idx ty +! from_children in
        row.(ti) <-
          (match (compaction, compact_cap ty) with
          | true, Some cap -> min cap raw
          | _ -> raw))
      P.all_types;
    jb.(idx) <- row
  done;
  let validated_merges idx =
    List.fold_left
      (fun acc -> function P.Merge { validate; _ } when validate > 0 -> acc + 1 | _ -> acc)
      0 p.P.scripts.(idx)
  in
  let scripts = ref [] in
  let total_calls = ref 0 in
  let total_bytes = ref 0 in
  let tasks = ref 0 in
  for idx = 0 to n - 1 do
    if m.Model.reachable.(idx) then begin
      let instances = m.Model.instances.(idx) in
      (* A successful merge consumes a child journal exactly once; every
         ?validate refusal redoes the transform work and re-parks the child,
         so each validated merge step adds one potential attempt. *)
      let attempts = 1 + validated_merges idx in
      let child_ops = ref 0 in
      let calls = ref 0 in
      let bytes = ref 0 in
      List.iteri
        (fun ti ty ->
          let s = split_factor ty in
          let from_children =
            List.fold_left
              (fun acc (e : Model.edge) -> acc +! (s *! jb.(e.target).(ti)))
              0 m.Model.edges.(idx)
          in
          let parent_max = Model.own m idx ty +! from_children in
          child_ops := !child_ops +! from_children;
          if not (zero_transform ty) then
            (* per child piece x applied op, both directions (the control
               algorithm meters 2 per included pair), once per attempt *)
            calls := !calls +! (attempts *! (2 *! (from_children *! (s *! parent_max))));
          bytes := !bytes +! (attempts *! (op_bytes ty *! (from_children +! parent_max))))
        P.all_types;
      let row =
        { idx
        ; instances
        ; attempts
        ; child_ops = !child_ops
        ; calls = !calls
        ; bytes = !bytes
        }
      in
      scripts := row :: !scripts;
      tasks := !tasks +! instances;
      total_calls := !total_calls +! (instances *! !calls);
      total_bytes := !total_bytes +! (instances *! !bytes)
    end
  done;
  { tasks = !tasks
  ; compaction
  ; scripts = List.rev !scripts
  ; total_calls = !total_calls
  ; total_bytes = !total_bytes
  }

let pp ppf t =
  Format.fprintf ppf "static cost model (compaction %s): %d task instance%s@."
    (if t.compaction then "on" else "off")
    t.tasks
    (if t.tasks = 1 then "" else "s");
  List.iter
    (fun s ->
      Format.fprintf ppf
        "  task %d: %d instance%s, %d merge attempt%s, <=%d child ops folded, <=%d transform \
         calls, <=%d journal bytes@."
        s.idx s.instances
        (if s.instances = 1 then "" else "s")
        s.attempts
        (if s.attempts = 1 then "" else "s")
        s.child_ops s.calls s.bytes)
    t.scripts;
  Format.fprintf ppf "  total: <=%d transform calls, <=%d journal bytes per run@." t.total_calls
    t.total_bytes
