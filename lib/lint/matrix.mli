(** Statically derived per-module commutation matrices.

    For every registered op module ({!Sm_check.Registry}), enumerate small
    states and all valid op pairs ({!Sm_check.Enum.S}) and record, per pair
    of {e op classes} (the leading identifier of the module's [pp_op]
    rendering):

    - {b converges} — merging the two ops as one-op children in both set
      orders through the real control algorithm ({!Sm_ot.Control.Make.merge})
      yields equal states.  A non-convergent class pair means a
      [MergeAllFromSet] outcome can depend on the set order — the lint
      merge-order analysis consumes exactly this bit.
    - {b identity} — the pairwise transforms leave both ops unchanged: the
      pair never forces transform work (conflict prediction).
    - {b commutes_hint} — the module's own [commutes] hint accepted the
      pair in both directions; when it holds for {e every} pair the control
      algorithm's fast path skips transforms entirely and the static cost
      model can zero that key's transform bound.

    Derivation is sampling-based over the bounded enumeration, so it {e
    over-approximates conservatively}: a bit is true only when every sample
    agreed.  The agreement harness validates the matrices empirically
    against executed programs; [mqueue]'s push x push pair is the one
    expected order-sensitive cell, pinned by the registry known issue
    ["queue-push-order"]. *)

type cell =
  { a_class : string
  ; b_class : string  (** classes ordered [a_class <= b_class] *)
  ; samples : int  (** (state, op, op) samples behind the bits *)
  ; converges : bool
  ; identity : bool
  ; commutes_hint : bool
  }

type t =
  { module_name : string
  ; depth : int  (** enumeration budget the matrix was derived at *)
  ; classes : string list
  ; cells : cell list
  ; pinned : string option  (** registry known-issue id, when the module has one *)
  }

val of_entry : ?depth:int -> Sm_check.Registry.entry -> t

val for_name : ?depth:int -> string -> t option
(** Lenient lookup via {!Sm_check.Registry.find}, memoized per
    (module, depth). *)

val order_sensitive : t -> cell list
val transform_forcing : t -> cell list

val all_commute : t -> bool
(** Every pair carries the [commutes] hint: merges of this type hit the
    zero-transform fast path. *)

val pp : Format.formatter -> t -> unit
