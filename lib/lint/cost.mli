(** Static cost model: per-program upper bounds on OT transform calls and
    journal bytes, derived from the IR alone.

    The derivation follows the PR-4 accounting: the control algorithm meters
    two [ot.transform_calls] per (incoming piece, applied op) pair it
    includes, child journals are compacted before integration (ceilings from
    the interpreter's payload bounds: counter/register fuse to 1 op, map/set
    to at most 8), ops can split across a merge by a per-type factor (text
    range deletes into at most 3 pieces), every [?validate] refusal redoes a
    merge's transform work, and types whose op classes all carry the
    [commutes] hint ride the zero-transform fast path.  Instance
    multiplicities come from the spawn graph; all arithmetic saturates.

    The transform-call total is a sound upper bound on the observed
    [ot.transform_calls] of any run of the program (the agreement harness
    and [sm-lint cost --run] enforce >= observed); journal bytes are a
    reporting estimate. *)

type script_cost =
  { idx : int
  ; instances : int  (** spawn-graph multiplicity of this script *)
  ; attempts : int  (** merge attempts incl. [?validate] retries *)
  ; child_ops : int  (** bound on child journal ops folded by one instance *)
  ; calls : int  (** transform-call bound for one instance *)
  ; bytes : int  (** journal-byte bound for one instance *)
  }

type t =
  { tasks : int
  ; compaction : bool
  ; scripts : script_cost list  (** reachable scripts, ascending index *)
  ; total_calls : int
  ; total_bytes : int
  }

val analyze : ?compaction:bool -> Model.t -> t
(** [compaction] (default [true], the runtime default) controls whether the
    per-type compaction ceilings apply. *)

val split_factor : Sm_ir.Program.ty -> int
val op_bytes : Sm_ir.Program.ty -> int
val pp : Format.formatter -> t -> unit
