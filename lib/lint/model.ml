module P = Sm_ir.Program

type edge =
  { step : int
  ; target : int
  ; clone : bool
  }

type t =
  { program : P.t
  ; n : int
  ; edges : edge list array
  ; reachable : bool array
  ; parent : (int * int) option array
  ; instances : int array
  ; own_ops : int array array  (** [own_ops.(idx).(tyi)]: ops of that type in the script *)
  ; subtree_ops : int array array  (** own + every spawned/cloned descendant (per edge) *)
  ; subtree_sync : bool array
  ; subtree_any : bool array
  }

let nty = List.length P.all_types
let ty_index ty = Option.get (List.find_index (fun t -> t = ty) P.all_types)

(* Instance counts saturate: a hand-authored program can chain spawns into
   counts the interpreter's task budget would never realize, and the cost
   model only needs "at least this big" to stay an upper bound. *)
let sat_cap = max_int / 4
let sat x = if x > sat_cap then sat_cap else x
let sat_add a b = sat (a + b)
let sat_mul a b = if a = 0 || b = 0 then 0 else if a > sat_cap / b then sat_cap else sat (a * b)

let build (p : P.t) =
  let n = Array.length p.P.scripts in
  let edges = Array.make n [] in
  Array.iteri
    (fun idx steps ->
      edges.(idx) <-
        List.rev
          (snd
             (List.fold_left
                (fun (i, acc) step ->
                  match step with
                  | P.Spawn j | P.Clone j -> (
                    match P.resolve_target ~nscripts:n ~idx j with
                    | Some target ->
                      let clone = match step with P.Clone _ -> true | _ -> false in
                      (i + 1, { step = i; target; clone } :: acc)
                    | None -> (i + 1, acc))
                  | _ -> (i + 1, acc))
                (0, []) steps)))
    p.P.scripts;
  let reachable = Array.make n false in
  let parent = Array.make n None in
  let instances = Array.make n 0 in
  reachable.(0) <- true;
  instances.(0) <- 1;
  (* targets are strictly increasing, so one ascending pass settles both
     reachability and instance multiplicities *)
  for idx = 0 to n - 1 do
    if reachable.(idx) then
      List.iter
        (fun e ->
          reachable.(e.target) <- true;
          if parent.(e.target) = None then parent.(e.target) <- Some (idx, e.step);
          instances.(e.target) <- sat_add instances.(e.target) instances.(idx))
        edges.(idx)
  done;
  let own_ops =
    Array.mapi
      (fun _ steps ->
        let row = Array.make nty 0 in
        List.iter
          (function
            | P.Op { ty; _ } -> row.(ty_index ty) <- row.(ty_index ty) + 1
            | _ -> ())
          steps;
        row)
      p.P.scripts
  in
  let subtree_ops = Array.make n [||] in
  let subtree_sync = Array.make n false in
  let subtree_any = Array.make n false in
  for idx = n - 1 downto 0 do
    let row = Array.copy own_ops.(idx) in
    let sync = ref (List.mem P.Sync p.P.scripts.(idx)) in
    let any =
      ref
        (List.exists
           (function P.Merge { kind = P.Any | P.Any_set; _ } -> true | _ -> false)
           p.P.scripts.(idx))
    in
    List.iter
      (fun e ->
        Array.iteri (fun ti c -> row.(ti) <- sat_add row.(ti) c) subtree_ops.(e.target);
        sync := !sync || subtree_sync.(e.target);
        any := !any || subtree_any.(e.target))
      edges.(idx);
    subtree_ops.(idx) <- row;
    subtree_sync.(idx) <- !sync;
    subtree_any.(idx) <- !any
  done;
  { program = p
  ; n
  ; edges
  ; reachable
  ; parent
  ; instances
  ; own_ops
  ; subtree_ops
  ; subtree_sync
  ; subtree_any
  }

let own m idx ty = m.own_ops.(idx).(ty_index ty)
let subtree m idx ty = m.subtree_ops.(idx).(ty_index ty)
let subtree_has_ops m idx = Array.exists (fun c -> c > 0) m.subtree_ops.(idx)

(* Provenance: the first-spawner chain from a script up to the root, rendered
   DetSan-style (hazard site first, digested root last). *)
let chain_to_root m idx =
  let rec go idx acc =
    if idx = 0 then List.rev ("task 0's workspace is digested at end of run" :: acc)
    else
      match m.parent.(idx) with
      | Some (p, step) ->
        go p
          (Printf.sprintf "task %d merges into task %d (spawned at task %d step %d)" idx p p step
          :: acc)
      | None -> List.rev (Printf.sprintf "task %d is unreachable" idx :: acc)
  in
  go idx []
