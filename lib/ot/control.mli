(** The transformation control algorithm.

    The paper splits an OT system into {e transformation functions} (the
    per-type [transform] in each [Op_*] module) and a {e transformation
    control algorithm} that decides which function is applied to which pair
    of concurrent operations.  This module is the control side: it lifts
    pairwise transforms to whole operation sequences and implements the
    paper's [merge(ops_f, ops_g) -> ops_h] (equations (4)-(8)).

    All functions are pure.  Sequences are ordered oldest-first, each
    operation defined on the state produced by its predecessors. *)

val transform_calls : Sm_obs.Metrics.counter
(** Pairwise transform invocations across every instantiation of {!Make}
    (each included pair counts both directions).  Only advances while
    {!Sm_obs.Metrics.set_enabled} profiling is on. *)

val compact_in : Sm_obs.Metrics.counter
(** Operations handed to {!Make.compact} across every instantiation.  Only
    advances while {!Sm_obs.Metrics.set_enabled} profiling is on. *)

val compact_out : Sm_obs.Metrics.counter
(** Operations surviving {!Make.compact}; [compact_in - compact_out] is the
    total journal shrinkage.  Only advances while profiling is on. *)

module Make (O : Op_sig.S) : sig
  val apply_seq : O.state -> O.op list -> O.state
  (** Fold [O.apply] over a sequence. *)

  val transform_op : O.op -> against:O.op list -> tie:Side.policy -> O.op list
  (** Include one operation into a concurrent sequence: the result applies
      after [against] and preserves the operation's intention.  Note the
      sequence is {e not} re-expressed against the operation; use {!cross}
      when both directions are needed. *)

  val cross : incoming:O.op list -> applied:O.op list -> tie:Side.policy -> O.op list * O.op list
  (** [cross ~incoming ~applied ~tie] symmetrically transforms two concurrent
      sequences that diverged from the same state: returns
      [(incoming', applied')] such that [applied @ incoming'] and
      [incoming @ applied'] produce {e the same} state (convergence), with
      direct conflicts resolved for [incoming] per [tie] (and for [applied]
      per the opposite side, keeping the rule consistent).

      Fast paths: when either sequence is empty, or every cross pair
      satisfies [O.commutes] (which promises identity transforms in both
      directions), both inputs are returned unchanged without invoking any
      transform function.  The result is identical to the full cross — the
      [commutes] contract is machine-checked by the [lib/check]
      compaction-equivalence property. *)

  val transform_seq : O.op list -> against:O.op list -> tie:Side.policy -> O.op list
  (** First component of {!cross}. *)

  val merge : applied:O.op list -> children:O.op list list -> tie:Side.policy -> O.op list
  (** The paper's Merge: serialize children's concurrent logs after the
      parent's own operations, in the order given.  Returns the full
      serialized sequence [applied @ child_1' @ child_2' @ ...]; applying it
      to the spawn-time state yields the merged result.  Merge order is
      significant: [merge ~children:[x; y] <> merge ~children:[y; x]] in
      general.

      The serialization accumulates as chunks rather than one repeatedly
      re-appended list, so merging [k] children is linear (not quadratic) in
      the output length.  The transform sequence — and therefore the result
      and the {!transform_calls} count — is unchanged. *)

  val compact : O.op list -> O.op list
  (** [O.compact] with {!compact_in}/{!compact_out} metering (skipped, along
      with the rewrite itself, for journals of length [<= 1]).  The result
      is apply-equivalent to the input on every state. *)
end
