module Make (Elt : Op_sig.ELT) = struct
  type state = Elt.t list

  type op =
    | Push of Elt.t
    | Pop

  let push x = Push x
  let pop = Pop

  let apply s = function
    | Push x -> s @ [ x ]
    | Pop -> ( match s with [] -> [] | _ :: rest -> rest)

  (* Pops consume a slot, so they transform to themselves against anything.
     Concurrent pushes do NOT pairwise-commute — each side would append the
     incoming push after its own — but their order is defined to be the
     deterministic merge serialization order (see the .mli), which only ever
     transforms in one direction.  lib/check registers the resulting TP1 /
     cross divergence as the expected issue "queue-push-order". *)
  let transform a ~against:_ ~tie:_ = [ a ]

  (* No sound state-independent rewrite exists: [Push x; Pop] is the
     identity only on an empty queue (on a non-empty one it pops the old
     head and appends x), and pops are no-ops exactly when the queue is
     empty — every candidate rule inspects the state.  Compaction stays the
     identity. *)
  let compact ops = ops

  (* The transform is the identity in both directions for every pair, which
     is precisely the contract [commutes] promises (apply-level ordering is
     the merge serialization order — see the transform comment above). *)
  let commutes _ _ = true

  (* Rebuild the spine (3 words per cons cell); elements stay shared. *)
  let copy_state s = List.map Fun.id s
  let state_size s = Op_sig.word_bytes + (3 * Op_sig.word_bytes * List.length s)

  let equal_state = List.equal Elt.equal

  let pp_state ppf s =
    Format.fprintf ppf "<%a>"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") Elt.pp)
      s

  let pp_op ppf = function
    | Push x -> Format.fprintf ppf "push(%a)" Elt.pp x
    | Pop -> Format.pp_print_string ppf "pop"
end
