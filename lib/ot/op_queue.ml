module Make (Elt : Op_sig.ELT) = struct
  type state = Elt.t list

  type op =
    | Push of Elt.t
    | Pop

  let push x = Push x
  let pop = Pop

  let apply s = function
    | Push x -> s @ [ x ]
    | Pop -> ( match s with [] -> [] | _ :: rest -> rest)

  (* Pushes append, pops consume a slot: every pair commutes by intention. *)
  let transform a ~against:_ ~tie:_ = [ a ]

  let equal_state = List.equal Elt.equal

  let pp_state ppf s =
    Format.fprintf ppf "<%a>"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") Elt.pp)
      s

  let pp_op ppf = function
    | Push x -> Format.fprintf ppf "push(%a)" Elt.pp x
    | Pop -> Format.pp_print_string ppf "pop"
end
