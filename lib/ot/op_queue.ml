module Make (Elt : Op_sig.ELT) = struct
  type state = Elt.t list

  type op =
    | Push of Elt.t
    | Pop

  let push x = Push x
  let pop = Pop

  let apply s = function
    | Push x -> s @ [ x ]
    | Pop -> ( match s with [] -> [] | _ :: rest -> rest)

  (* Pops consume a slot, so they transform to themselves against anything.
     Concurrent pushes do NOT pairwise-commute — each side would append the
     incoming push after its own — but their order is defined to be the
     deterministic merge serialization order (see the .mli), which only ever
     transforms in one direction.  lib/check registers the resulting TP1 /
     cross divergence as the expected issue "queue-push-order". *)
  let transform a ~against:_ ~tie:_ = [ a ]

  let equal_state = List.equal Elt.equal

  let pp_state ppf s =
    Format.fprintf ppf "<%a>"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") Elt.pp)
      s

  let pp_op ppf = function
    | Push x -> Format.fprintf ppf "push(%a)" Elt.pp x
    | Pop -> Format.pp_print_string ppf "pop"
end
