module Make (O : Op_sig.S) = struct
  module C = Control.Make (O)

  let tp1 ~state ~a ~b ~a_wins =
    (* When [a] is incoming it must win iff [a_wins]; when [b] is incoming it
       must win iff [not a_wins] — one global priority, two viewpoints. *)
    let tie_for_a = Side.uniform (if a_wins then Side.Incoming else Side.Applied) in
    let tie_for_b = Side.flip tie_for_a in
    let via_b = C.apply_seq (O.apply state b) (O.transform a ~against:b ~tie:tie_for_a) in
    let via_a = C.apply_seq (O.apply state a) (O.transform b ~against:a ~tie:tie_for_b) in
    O.equal_state via_b via_a

  let seqs_converge ~state ~left ~right ~tie =
    let left', right' = C.cross ~incoming:left ~applied:right ~tie in
    let via_right = C.apply_seq (C.apply_seq state right) left' in
    let via_left = C.apply_seq (C.apply_seq state left) right' in
    O.equal_state via_right via_left

  let merged_state ~state ~applied ~children =
    C.apply_seq state (C.merge ~applied ~children ~tie:Side.serialization)
  end
