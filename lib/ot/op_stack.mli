(** Mergeable stacks (LIFO).

    Contrast with {!Op_queue}: a queue pop means "consume one slot", so two
    concurrent pops remove two elements.  A stack pop is positional —
    "remove {e that} element" (the top the task saw, [Pop_at 0] at recording
    time) — so two concurrent pops of the same element collapse into one
    removal, exactly like two list deletes of the same index.  Operations
    are a specialization of {!Op_list}: pushes insert at position 0,
    [Pop_at] deletes a tracked position that concurrent operations shift.

    Merge ordering note: under the runtime's serialization tie policy an
    earlier-merged child's pushes stay {e closer to the top} than a
    later-merged sibling's (positional ties go to the already-applied
    side) — deterministic, just not "later push on top" across tasks. *)

module Make (Elt : Op_sig.ELT) : sig
  type state = Elt.t list
  (** Top of the stack at the head. *)

  type op =
    | Push_at of int * Elt.t
        (** [Push_at (i, x)]: insert at depth [i]; user code records
            [Push_at (0, x)], transforms may shift it deeper. *)
    | Pop_at of int
        (** [Pop_at i]: remove the element currently at depth [i]; user code
            records [Pop_at 0], transforms may shift it deeper. *)

  include Op_sig.S with type state := state and type op := op

  val push : Elt.t -> op
  (** [Push_at (0, x)]. *)

  val pop : op
  (** [Pop_at 0]. *)
end
