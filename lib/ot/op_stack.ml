module Make (Elt : Op_sig.ELT) = struct
  type state = Elt.t list

  type op =
    | Push_at of int * Elt.t
    | Pop_at of int

  let push x = Push_at (0, x)
  let pop = Pop_at 0

  let apply s = function
    | Push_at (i, x) ->
      if i < 0 || i > List.length s then
        invalid_arg (Printf.sprintf "Op_stack.apply: push position %d out of range (depth %d)" i (List.length s));
      let rec ins i rest = if i = 0 then x :: rest else match rest with
        | y :: ys -> y :: ins (i - 1) ys
        | [] -> assert false
      in
      ins i s
    | Pop_at i ->
      if i < 0 || i >= List.length s then
        invalid_arg (Printf.sprintf "Op_stack.apply: pop position %d out of range (depth %d)" i (List.length s));
      List.filteri (fun j _ -> j <> i) s

  (* The insert/delete corner of the list IT matrix, with depth-0 intent. *)
  let transform a ~against:b ~tie =
    match a, b with
    | Push_at (i, x), Push_at (j, _) ->
      if i < j || (i = j && Side.incoming_wins tie.Side.position) then [ Push_at (i, x) ]
      else [ Push_at (i + 1, x) ]
    | Push_at (i, x), Pop_at j -> if j < i then [ Push_at (i - 1, x) ] else [ Push_at (i, x) ]
    | Pop_at i, Push_at (j, _) -> if j <= i then [ Pop_at (i + 1) ] else [ Pop_at i ]
    | Pop_at i, Pop_at j ->
      if j < i then [ Pop_at (i - 1) ] else if j = i then [] else [ Pop_at i ]

  (* Pushing a slot and immediately popping it cancels; that is the only
     same-index pair whose net effect is state-independent (pop positions
     against anything else depend on what sits where). *)
  let compact ops =
    let rec sweep changed acc = function
      | Push_at (i, _) :: Pop_at j :: rest when j = i -> sweep true acc rest
      | op :: rest -> sweep changed (op :: acc) rest
      | [] -> (changed, List.rev acc)
    in
    let rec fix ops =
      match sweep false [] ops with
      | false, ops -> ops
      | true, ops -> fix ops
    in
    match ops with [] | [ _ ] -> ops | _ -> fix ops

  let commutes _ _ = false

  (* Rebuild the spine (3 words per cons cell); elements stay shared. *)
  let copy_state s = List.map Fun.id s
  let state_size s = Op_sig.word_bytes + (3 * Op_sig.word_bytes * List.length s)

  let equal_state = List.equal Elt.equal

  let pp_state ppf s =
    Format.fprintf ppf "|%a>"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") Elt.pp)
      s

  let pp_op ppf = function
    | Push_at (i, x) -> Format.fprintf ppf "push_at(%d, %a)" i Elt.pp x
    | Pop_at i -> Format.fprintf ppf "pop_at(%d)" i
end
