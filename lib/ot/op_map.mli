(** Mergeable dictionaries.

    Operations on different keys commute; two operations on the same key are
    a per-key register conflict ([Put]/[Put], [Put]/[Remove]) resolved by
    {!Side.t}.  Removing an absent key is a no-op, keeping operations
    idempotent. *)

module Make (Key : Op_sig.ORDERED_ELT) (Value : Op_sig.ELT) : sig
  module Key_map : Map.S with type key = Key.t

  type state = Value.t Key_map.t

  type op =
    | Put of Key.t * Value.t
    | Remove of Key.t

  include Op_sig.S with type state := state and type op := op

  val put : Key.t -> Value.t -> op
  val remove : Key.t -> op
end
