(** Mergeable FIFO queues — the paper's [MergeableQueue] from the network
    simulation (Listing 4).

    Semantics are {e intention-based}:

    - [Push x] appends [x] at the back.  Two concurrent pushes both survive a
      merge; their relative order is the (deterministic) merge order.
    - [Pop] means "consume one slot from the front", {e not} "remove the
      element I saw".  Two concurrent pops therefore remove two elements
      after merging, and a pop on an empty queue is a no-op — this makes
      the transform of [Pop] against anything the identity and keeps k
      concurrent pops removing exactly [min k length] elements.

    The consume-a-slot intention is the right one for single-consumer queues
    (each simulated host pops only its own queue).  A "remove that exact
    element" intention would instead be an {!Op_list} delete. *)

module Make (Elt : Op_sig.ELT) : sig
  type state = Elt.t list
  (** Front of the queue at the head of the list. *)

  type op =
    | Push of Elt.t
    | Pop

  include Op_sig.S with type state := state and type op := op

  val push : Elt.t -> op
  val pop : op
end
