module Make (Label : Op_sig.ELT) = struct
  type node =
    { label : Label.t
    ; children : node list
    }

  type state = node list
  type path = int list

  type op =
    | Insert of path * node
    | Delete of path
    | Relabel of path * Label.t

  let leaf label = { label; children = [] }
  let branch label children = { label; children }
  let insert p n = Insert (p, n)
  let delete p = Delete p
  let relabel p l = Relabel (p, l)

  let rec find forest = function
    | [] -> None
    | [ i ] -> List.nth_opt forest i
    | i :: rest -> ( match List.nth_opt forest i with None -> None | Some n -> find n.children rest)

  let rec size forest = List.fold_left (fun acc n -> acc + 1 + size n.children) 0 forest

  (* Navigate to the sibling list holding the path's last component and edit
     it there.  [f siblings i] performs the local edit. *)
  let rec edit forest path ~f =
    match path with
    | [] -> invalid_arg "Op_tree.apply: empty path"
    | [ i ] -> f forest i
    | i :: rest ->
      if i < 0 || i >= List.length forest then invalid_arg "Op_tree.apply: path component out of range";
      List.mapi (fun j n -> if j = i then { n with children = edit n.children rest ~f } else n) forest

  let apply s op =
    match op with
    | Insert (p, n) ->
      edit s p ~f:(fun siblings i ->
          if i < 0 || i > List.length siblings then invalid_arg "Op_tree.apply: insert gap out of range";
          let rec ins i rest = if i = 0 then n :: rest else match rest with
            | x :: xs -> x :: ins (i - 1) xs
            | [] -> assert false
          in
          ins i siblings)
    | Delete p ->
      edit s p ~f:(fun siblings i ->
          if i < 0 || i >= List.length siblings then invalid_arg "Op_tree.apply: delete target out of range";
          List.filteri (fun j _ -> j <> i) siblings)
    | Relabel (p, l) ->
      edit s p ~f:(fun siblings i ->
          if i < 0 || i >= List.length siblings then invalid_arg "Op_tree.apply: relabel target out of range";
          List.mapi (fun j n -> if j = i then { n with label = l } else n) siblings)

  (* --- path transformation ------------------------------------------------ *)

  let rec take n = function [] -> [] | x :: xs -> if n = 0 then [] else x :: take (n - 1) xs

  let rec is_prefix prefix p =
    match prefix, p with
    | [], _ -> true
    | _, [] -> false
    | a :: pre, b :: rest -> a = b && is_prefix pre rest

  let set_nth p d v = List.mapi (fun i x -> if i = d then v else x) p

  let split_last q =
    let d = List.length q - 1 in
    (take d q, List.nth q d)

  (* Rewrite [p] after an applied insert at [q].  [last_is_gap] says whether
     [p]'s final component is a gap index (incoming insert) rather than a node
     index; gaps at the exact insert position tie-break via [incoming_wins]. *)
  let xform_path_after_insert p ~last_is_gap ~q ~incoming_wins =
    let q_parent, q_pos = split_last q in
    let d = List.length q_parent in
    if not (is_prefix q_parent p) then p
    else
      match List.nth_opt p d with
      | None -> p
      | Some k ->
        let is_last = List.length p = d + 1 in
        let shifted =
          if is_last && last_is_gap then
            if k > q_pos || (k = q_pos && not incoming_wins) then k + 1 else k
          else if k >= q_pos then k + 1
          else k
        in
        if shifted = k then p else set_nth p d shifted

  (* Rewrite [p] after an applied delete at [q]; [None] when [p] addressed the
     deleted node or descended into its subtree. *)
  let xform_path_after_delete p ~last_is_gap ~q =
    let q_parent, q_pos = split_last q in
    let d = List.length q_parent in
    if not (is_prefix q_parent p) then Some p
    else
      match List.nth_opt p d with
      | None -> Some p
      | Some k ->
        let is_last = List.length p = d + 1 in
        if is_last && last_is_gap then Some (if k > q_pos then set_nth p d (k - 1) else p)
        else if k = q_pos then None
        else if k > q_pos then Some (set_nth p d (k - 1))
        else Some p

  let with_path op p' =
    match op with
    | Insert (_, n) -> Insert (p', n)
    | Delete _ -> Delete p'
    | Relabel (_, l) -> Relabel (p', l)

  let path_of = function Insert (p, _) -> p | Delete p -> p | Relabel (p, _) -> p
  let is_insert = function Insert _ -> true | Delete _ | Relabel _ -> false

  let transform a ~against:b ~tie =
    match b with
    | Insert (q, _) ->
      let p' =
        xform_path_after_insert (path_of a) ~last_is_gap:(is_insert a) ~q
          ~incoming_wins:(Side.incoming_wins tie.Side.position)
      in
      [ with_path a p' ]
    | Delete q -> (
      match xform_path_after_delete (path_of a) ~last_is_gap:(is_insert a) ~q with
      | None -> []
      | Some p' -> [ with_path a p' ])
    | Relabel (q, lb) -> (
      match a with
      | Relabel (p, la) when p = q ->
        if Label.equal la lb then [ a ] else if Side.incoming_wins tie.Side.value then [ a ] else []
      | Insert _ | Delete _ | Relabel _ -> [ a ])

  (* Adjacent rewriting at exactly equal paths: inserting a node and
     immediately deleting it cancels (the delete removes the whole
     just-inserted subtree); a relabel directly after an insert of the same
     node folds into the inserted label; consecutive relabels of one node
     keep only the last.  Path equality is exact — prefix/sibling relations
     are positional and therefore state-dependent. *)
  let compact ops =
    let rec sweep changed acc = function
      | Insert (p, _) :: Delete q :: rest when p = q -> sweep true acc rest
      | Insert (p, n) :: Relabel (q, l) :: rest when p = q ->
        sweep true acc (Insert (p, { n with label = l }) :: rest)
      | Relabel (p, _) :: Relabel (q, l) :: rest when p = q ->
        sweep true acc (Relabel (p, l) :: rest)
      | op :: rest -> sweep changed (op :: acc) rest
      | [] -> (changed, List.rev acc)
    in
    let rec fix ops =
      match sweep false [] ops with
      | false, ops -> ops
      | true, ops -> fix ops
    in
    match ops with [] | [ _ ] -> ops | _ -> fix ops

  let commutes _ _ = false

  (* Rebuild every node record and sibling spine (3 + 3 words per node);
     labels stay shared. *)
  let rec copy_state forest =
    List.map (fun n -> { label = n.label; children = copy_state n.children }) forest

  let state_size forest = Op_sig.word_bytes + (6 * Op_sig.word_bytes * size forest)

  let rec equal_node a b = Label.equal a.label b.label && List.equal equal_node a.children b.children
  let equal_state = List.equal equal_node

  let rec pp_node ppf n =
    if n.children = [] then Label.pp ppf n.label
    else Format.fprintf ppf "%a(%a)" Label.pp n.label pp_forest n.children

  and pp_forest ppf forest =
    Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_node ppf forest

  let pp_state ppf s = Format.fprintf ppf "[%a]" pp_forest s

  let pp_path ppf p =
    Format.fprintf ppf "/%a"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "/") Format.pp_print_int)
      p

  let pp_op ppf = function
    | Insert (p, n) -> Format.fprintf ppf "insert(%a, %a)" pp_path p pp_node n
    | Delete p -> Format.fprintf ppf "delete(%a)" pp_path p
    | Relabel (p, l) -> Format.fprintf ppf "relabel(%a, %a)" pp_path p Label.pp l
end
