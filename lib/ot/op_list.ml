module Make (Elt : Op_sig.ELT) = struct
  type elt = Elt.t
  type state = elt list

  type op =
    | Ins of int * elt
    | Del of int
    | Set of int * elt

  let ins i x = Ins (i, x)
  let del i = Del i
  let set i x = Set (i, x)

  let apply s op =
    let len = List.length s in
    let check_pos name i upper =
      if i < 0 || i > upper then
        invalid_arg (Printf.sprintf "Op_list.apply: %s position %d out of range (len %d)" name i len)
    in
    match op with
    | Ins (i, x) ->
      check_pos "ins" i len;
      let rec insert i = function
        | rest when i = 0 -> x :: rest
        | y :: rest -> y :: insert (i - 1) rest
        | [] -> assert false
      in
      insert i s
    | Del i ->
      check_pos "del" i (len - 1);
      let rec delete i = function
        | _ :: rest when i = 0 -> rest
        | y :: rest -> y :: delete (i - 1) rest
        | [] -> assert false
      in
      delete i s
    | Set (i, x) ->
      check_pos "set" i (len - 1);
      List.mapi (fun j y -> if j = i then x else y) s

  (* The IT matrix.  [a] is incoming, [b] is already applied; the result of
     [transform a b] is a's intention re-expressed on the state after b.
     Ties (equal positions) go to the side named by [tie]. *)
  let transform a ~against:b ~tie =
    match a, b with
    | Ins (i, x), Ins (j, _) ->
      if i < j || (i = j && Side.incoming_wins tie.Side.position) then [ Ins (i, x) ] else [ Ins (i + 1, x) ]
    | Ins (i, x), Del j -> if j < i then [ Ins (i - 1, x) ] else [ Ins (i, x) ]
    | Ins (i, x), Set (_, _) -> [ Ins (i, x) ]
    | Del i, Ins (j, _) -> if j <= i then [ Del (i + 1) ] else [ Del i ]
    | Del i, Del j -> if j < i then [ Del (i - 1) ] else if j = i then [] else [ Del i ]
    | Del i, Set (_, _) -> [ Del i ]
    | Set (i, x), Ins (j, _) -> if j <= i then [ Set (i + 1, x) ] else [ Set (i, x) ]
    | Set (i, x), Del j -> if j < i then [ Set (i - 1, x) ] else if j = i then [] else [ Set (i, x) ]
    | Set (i, x), Set (j, _) ->
      if i = j && not (Side.incoming_wins tie.Side.value) then [] else [ Set (i, x) ]

  (* Adjacent-pair rewriting at equal indices, iterated to a fixpoint:
     insert-then-delete cancels, writes to the same slot collapse into the
     last one.  Only same-index pairs rewrite — anything positional across
     different indices would be state-dependent.  Every rule strictly
     shortens the sequence, so the outer loop terminates. *)
  let compact ops =
    let rec sweep changed acc = function
      | Ins (i, _) :: Del j :: rest when j = i -> sweep true acc rest
      | Ins (i, _) :: Set (j, y) :: rest when j = i -> sweep true acc (Ins (i, y) :: rest)
      | Set (i, _) :: Set (j, y) :: rest when j = i -> sweep true acc (Set (i, y) :: rest)
      | Set (i, _) :: Del j :: rest when j = i -> sweep true acc (Del j :: rest)
      | op :: rest -> sweep changed (op :: acc) rest
      | [] -> (changed, List.rev acc)
    in
    let rec fix ops =
      match sweep false [] ops with
      | false, ops -> ops
      | true, ops -> fix ops
    in
    match ops with [] | [ _ ] -> ops | _ -> fix ops

  (* Positional ops shift each other's indices; no sound skip. *)
  let commutes _ _ = false

  (* Rebuild the spine (3 words per cons cell); elements stay shared. *)
  let copy_state s = List.map Fun.id s
  let state_size s = Op_sig.word_bytes + (3 * Op_sig.word_bytes * List.length s)

  let equal_state = List.equal Elt.equal

  let pp_state ppf s =
    Format.fprintf ppf "[%a]" (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") Elt.pp) s

  let pp_op ppf = function
    | Ins (i, x) -> Format.fprintf ppf "ins(%d, %a)" i Elt.pp x
    | Del i -> Format.fprintf ppf "del(%d)" i
    | Set (i, x) -> Format.fprintf ppf "set(%d, %a)" i Elt.pp x
end
