(** Mergeable integer counters.

    [Add n] commutes with everything, so the inclusion transform is the
    identity — the simplest possible mergeable type, and the one the network
    simulation uses to track live messages across tasks. *)

type state = int

type op = Add of int

include Op_sig.S with type state := state and type op := op

val add : int -> op
