(* A chunked rope: a balanced binary tree over string chunks, the classic
   heavy-edit text representation (Boehm, Atkinson & Plass).  Leaves hold up
   to [max_chunk] bytes; interior nodes cache subtree length and height so
   position lookups, splits and joins are O(log n).  Balancing follows the
   stdlib [Set] discipline — sibling heights differ by at most 2, restored
   by single/double rotations — so depth stays logarithmic in the chunk
   count under any edit sequence. *)

type t =
  | Leaf of string
  | Node of
      { l : t
      ; r : t
      ; len : int
      ; ht : int
      }

(* Chunk sizing: leaves are split when an edit would push them past
   [max_chunk]; fresh bulk text is cut into [target_chunk]-byte leaves so a
   freshly loaded document sits mid-band and absorbs edits without
   immediately splitting or merging. *)
let max_chunk = 2048
let target_chunk = 1024

let empty = Leaf ""
let length = function Leaf s -> String.length s | Node n -> n.len
let height = function Leaf _ -> 0 | Node n -> n.ht
let is_empty t = length t = 0

(* Invariant (everywhere below): a [Node]'s subtrees are nonempty — the only
   empty leaf a well-formed rope contains is the root of the empty rope. *)
let node l r = Node { l; r; len = length l + length r; ht = 1 + max (height l) (height r) }

(* One rebalancing step, exactly stdlib [Set.bal]: absorbs a height
   difference of 3 (what [join]'s recursive descent can create) with a
   single or double rotation. *)
let bal l r =
  let hl = height l and hr = height r in
  if hl > hr + 2 then
    match l with
    | Leaf _ -> assert false
    | Node { l = ll; r = lr; _ } ->
      if height ll >= height lr then node ll (node lr r)
      else (
        match lr with
        | Leaf _ -> assert false
        | Node { l = lrl; r = lrr; _ } -> node (node ll lrl) (node lrr r))
  else if hr > hl + 2 then
    match r with
    | Leaf _ -> assert false
    | Node { l = rl; r = rr; _ } ->
      if height rr >= height rl then node (node l rl) rr
      else (
        match rl with
        | Leaf _ -> assert false
        | Node { l = rll; r = rlr; _ } -> node (node l rll) (node rlr rr))
  else node l r

(* Concatenate two well-formed ropes.  Adjacent small leaves fuse (the
   leaf/leaf case), so repeated edge appends coalesce into one growing
   chunk instead of degenerating into a chunk-per-keystroke spine; the
   descent mirrors [Set.join], keeping the height invariant. *)
let rec join l r =
  match (l, r) with
  | Leaf "", t | t, Leaf "" -> t
  | Leaf a, Leaf b when String.length a + String.length b <= max_chunk -> Leaf (a ^ b)
  | _ ->
    let hl = height l and hr = height r in
    if hl > hr + 2 then (
      match l with
      | Leaf _ -> assert false
      | Node { l = ll; r = lr; _ } -> bal ll (join lr r))
    else if hr > hl + 2 then (
      match r with
      | Leaf _ -> assert false
      | Node { l = rl; r = rr; _ } -> bal (join l rl) rr)
    else node l r

let of_string s =
  let n = String.length s in
  if n <= max_chunk then Leaf s
  else begin
    (* Cut into [target_chunk]-byte leaves and build the tree balanced by
       construction (heights of the two halves differ by at most one). *)
    let chunks = (n + target_chunk - 1) / target_chunk in
    let chunk i =
      let lo = i * target_chunk in
      Leaf (String.sub s lo (min target_chunk (n - lo)))
    in
    let rec build lo hi =
      if hi - lo = 1 then chunk lo
      else
        let mid = (lo + hi) / 2 in
        node (build lo mid) (build mid hi)
    in
    build 0 chunks
  end

(* [split t i] cuts into the first [i] bytes and the rest; both halves are
   well-formed.  O(log n) joins along the cut path. *)
let rec split t i =
  match t with
  | Leaf s ->
    let n = String.length s in
    if i <= 0 then (empty, t)
    else if i >= n then (t, empty)
    else (Leaf (String.sub s 0 i), Leaf (String.sub s i (n - i)))
  | Node { l; r; _ } ->
    let ll = length l in
    if i < ll then (
      let a, b = split l i in
      (a, join b r))
    else if i > ll then (
      let a, b = split r (i - ll) in
      (join l a, b))
    else (l, r)

let insert t pos s =
  if String.length s = 0 then t
  else
    let a, b = split t pos in
    join (join a (of_string s)) b

let delete t ~pos ~len =
  let a, rest = split t pos in
  let _, b = split rest len in
  join a b

let iter_chunks f t =
  let rec go = function
    | Leaf "" -> ()
    | Leaf s -> f s
    | Node { l; r; _ } ->
      go l;
      go r
  in
  go t

let fold_chunks f acc t =
  let acc = ref acc in
  iter_chunks (fun s -> acc := f !acc s) t;
  !acc

let to_string t =
  match t with
  | Leaf s -> s
  | Node { len; _ } ->
    let b = Buffer.create len in
    iter_chunks (Buffer.add_string b) t;
    Buffer.contents b

let sub t pos len =
  let _, rest = split t pos in
  let piece, _ = split rest len in
  to_string piece

(* A chunk cursor: the stack holds right subtrees still to visit.  Lets two
   ropes (or a rope and a flat string) be compared chunk-by-chunk without
   flattening either side. *)
let rec push_left t stack = match t with Leaf s -> (s, stack) | Node { l; r; _ } -> push_left l (r :: stack)

(* Empty chunks (the root leaf of an empty rope) are skipped so the stream
   of a ["" ] rope is indistinguishable from the stream of a drained one. *)
let rec next_chunk = function
  | [] -> None
  | t :: stack ->
    let s, stack = push_left t stack in
    if String.length s = 0 then next_chunk stack else Some (s, stack)

let equal_string t s =
  length t = String.length s
  && begin
       let off = ref 0 in
       let ok = ref true in
       iter_chunks
         (fun chunk ->
           let n = String.length chunk in
           if !ok && String.sub s !off n <> chunk then ok := false;
           off := !off + n)
         t;
       !ok
     end

let equal a b =
  length a = length b
  && begin
       (* Walk both chunk streams, comparing the overlap of the current
          chunks; chunk boundaries need not line up. *)
       let rec go (ca, ia) sa (cb, ib) sb =
         let ra = String.length ca - ia and rb = String.length cb - ib in
         if ra = 0 then
           match next_chunk sa with
           | None -> rb = 0 && next_chunk sb = None
           | Some (ca, sa) -> go (ca, 0) sa (cb, ib) sb
         else if rb = 0 then
           match next_chunk sb with
           | None -> false
           | Some (cb, sb) -> go (ca, ia) sa (cb, 0) sb
         else
           let k = min ra rb in
           String.sub ca ia k = String.sub cb ib k && go (ca, ia + k) sa (cb, ib + k) sb
       in
       go ("", 0) [ a ] ("", 0) [ b ]
     end

(* Structure-preserving deep copy with fresh chunk strings — the rope
   analogue of copying a flat document, so physical-sharing assertions can
   tell a copied state from a shared one. *)
let rec copy = function
  | Leaf s -> Leaf (String.init (String.length s) (String.get s))
  | Node { l; r; len; ht } -> Node { l = copy l; r = copy r; len; ht }

(* Heap footprint in bytes, one machine word per block header plus the
   node fields — what [state_size] accounting reports. *)
let word_bytes = 8

let rec size_bytes = function
  | Leaf s -> word_bytes + String.length s
  | Node { l; r; _ } -> (5 * word_bytes) + size_bytes l + size_bytes r

type stats =
  { chunks : int
  ; depth : int
  ; min_leaf : int
  ; max_leaf : int
  }

let stats t =
  let chunks = ref 0 and min_leaf = ref max_int and max_leaf = ref 0 in
  iter_chunks
    (fun s ->
      incr chunks;
      min_leaf := min !min_leaf (String.length s);
      max_leaf := max !max_leaf (String.length s))
    t;
  if !chunks = 0 then { chunks = 0; depth = height t; min_leaf = 0; max_leaf = 0 }
  else { chunks = !chunks; depth = height t; min_leaf = !min_leaf; max_leaf = !max_leaf }

(* Structural invariant checker, used by the property battery: cached
   lengths/heights honest, no empty leaf below the root, leaves within the
   chunk bound, and every sibling pair balanced within 2. *)
let check t =
  let rec go ~root = function
    | Leaf s ->
      if String.length s > max_chunk then
        Error (Printf.sprintf "leaf of %d bytes exceeds max_chunk %d" (String.length s) max_chunk)
      else if String.length s = 0 && not root then Error "empty leaf below the root"
      else Ok (String.length s, 0)
    | Node { l; r; len; ht } -> (
      match go ~root:false l with
      | Error _ as e -> e
      | Ok (ll, hl) -> (
        match go ~root:false r with
        | Error _ as e -> e
        | Ok (rl, hr) ->
          if ll + rl <> len then Error (Printf.sprintf "cached len %d, actual %d" len (ll + rl))
          else if 1 + max hl hr <> ht then
            Error (Printf.sprintf "cached height %d, actual %d" ht (1 + max hl hr))
          else if abs (hl - hr) > 2 then
            Error (Printf.sprintf "unbalanced node: heights %d vs %d" hl hr)
          else Ok (len, ht)))
  in
  match go ~root:true t with Ok _ -> Ok () | Error _ as e -> e
