type state = int
type op = Add of int

let add n = Add n
let apply s (Add n) = s + n
let transform a ~against:_ ~tie:_ = [ a ]

let compact = function
  | ([] | [ _ ]) as ops -> ops
  | ops ->
    let total = List.fold_left (fun acc (Add n) -> acc + n) 0 ops in
    if total = 0 then [] else [ Add total ]

(* Adds commute with everything: transform is the identity both ways. *)
let commutes _ _ = true

(* An int is unboxed: there is nothing to deep-copy. *)
let copy_state s = s
let state_size _ = Op_sig.word_bytes
let equal_state = Int.equal
let pp_state = Format.pp_print_int
let pp_op ppf (Add n) = Format.fprintf ppf "add(%d)" n
