type state = int
type op = Add of int

let add n = Add n
let apply s (Add n) = s + n
let transform a ~against:_ ~tie:_ = [ a ]
let equal_state = Int.equal
let pp_state = Format.pp_print_int
let pp_op ppf (Add n) = Format.fprintf ppf "add(%d)" n
