(** Mergeable sets.

    [Add x] and [Remove x] are idempotent, so operations on {e different}
    elements — and identical operations on the same element — commute freely.
    The only direct conflict is a concurrent [Add x] / [Remove x] pair, which
    {!Side.t} resolves: the losing operation is dropped. *)

module Make (Elt : Op_sig.ORDERED_ELT) : sig
  module Elt_set : Set.S with type elt = Elt.t

  type state = Elt_set.t

  type op =
    | Add of Elt.t
    | Remove of Elt.t

  include Op_sig.S with type state := state and type op := op

  val add : Elt.t -> op
  val remove : Elt.t -> op
end
