module Make (Elt : Op_sig.ORDERED_ELT) = struct
  module Elt_set = Set.Make (Elt)

  type state = Elt_set.t

  type op =
    | Add of Elt.t
    | Remove of Elt.t

  let add x = Add x
  let remove x = Remove x

  let apply s = function
    | Add x -> Elt_set.add x s
    | Remove x -> Elt_set.remove x s

  let transform a ~against:b ~tie =
    match a, b with
    | Add x, Remove y | Remove x, Add y ->
      if Elt.compare x y = 0 && not (Side.incoming_wins tie.Side.value) then [] else [ a ]
    | Add _, Add _ | Remove _, Remove _ -> [ a ]

  let elt_of = function Add x -> x | Remove x -> x

  (* Adds and removes of the same element overwrite each other: only the
     last op per element is observable (add/remove cancellation is the
     two-op case). *)
  let compact = function
    | ([] | [ _ ]) as ops -> ops
    | ops ->
      let seen = ref Elt_set.empty in
      List.fold_left
        (fun acc op ->
          let x = elt_of op in
          if Elt_set.mem x !seen then acc
          else begin
            seen := Elt_set.add x !seen;
            op :: acc
          end)
        [] (List.rev ops)

  let commutes a b =
    Elt.compare (elt_of a) (elt_of b) <> 0
    || (match (a, b) with
       | Add _, Add _ | Remove _, Remove _ -> true
       | Add _, Remove _ | Remove _, Add _ -> false)

  (* Rebuild the balanced tree node by node (5 words each: header + l/v/r/h);
     elements stay shared. *)
  let copy_state s = Elt_set.fold Elt_set.add s Elt_set.empty
  let state_size s = Op_sig.word_bytes + (5 * Op_sig.word_bytes * Elt_set.cardinal s)

  let equal_state = Elt_set.equal

  let pp_state ppf s =
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") Elt.pp)
      (Elt_set.elements s)

  let pp_op ppf = function
    | Add x -> Format.fprintf ppf "add(%a)" Elt.pp x
    | Remove x -> Format.fprintf ppf "remove(%a)" Elt.pp x
end
