(** Mergeable ordered trees (TreeOPT-style, after Ignat & Norrie, cited as
    [4] in the paper).

    The state is a forest of labelled, ordered nodes.  Operations address
    nodes by {e paths} — child indices from the root level down:

    - [Insert (p, n)]: the last component of [p] is a {e gap index} in the
      target sibling list (0 .. length, like a list insert); the leading
      components navigate to the parent.
    - [Delete p] removes the node at [p] {e and its whole subtree}.
    - [Relabel (p, l)] replaces the label at [p].

    Transforms shift sibling indices level by level exactly like
    {!Op_list} does for flat lists, and drop operations whose target was
    swallowed by a concurrent subtree deletion. *)

module Make (Label : Op_sig.ELT) : sig
  type node =
    { label : Label.t
    ; children : node list
    }

  type state = node list
  (** The root sibling list. *)

  type path = int list

  type op =
    | Insert of path * node
    | Delete of path
    | Relabel of path * Label.t

  include Op_sig.S with type state := state and type op := op

  val leaf : Label.t -> node
  val branch : Label.t -> node list -> node

  val insert : path -> node -> op
  val delete : path -> op
  val relabel : path -> Label.t -> op

  val find : state -> path -> node option
  (** Node addressed by a path, if any. *)

  val size : state -> int
  (** Total number of nodes in the forest. *)
end
