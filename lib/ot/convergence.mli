(** Convergence checkers used by the property-test suites.

    TP1 (transformation property 1) is the correctness condition for OT
    systems with a linear/centralized history, which is exactly the
    Spawn/Merge setting — every merge serializes child logs at the parent, so
    TP2 (order independence of transformation against two concurrent
    operations) is never exercised and need not hold. *)

module Make (O : Op_sig.S) : sig
  val tp1 : state:O.state -> a:O.op -> b:O.op -> a_wins:bool -> bool
  (** [tp1 ~state ~a ~b ~a_wins] checks
      [apply (apply s a) (IT b a) = apply (apply s b) (IT a b)] with the tie
      consistently awarded to [a] iff [a_wins].  Both operations must be
      applicable to [state]. *)

  val seqs_converge : state:O.state -> left:O.op list -> right:O.op list -> tie:Side.policy -> bool
  (** Checks that {!Control.Make.cross} makes two concurrent {e sequences}
      converge: [apply (right) then left' = apply (left) then right']. *)

  val merged_state : state:O.state -> applied:O.op list -> children:O.op list list -> O.state
  (** Final parent state after a full deterministic merge; convenience for
      comparing merge orders in tests. *)
end
