(* One process-wide counter across every instantiation: the runtime reads
   deltas around each merge (merges are serialized per runtime by the global
   lock) to attribute transform work to individual merges.  Gated on
   Metrics.set_enabled, so the disabled cost in this hot loop is one atomic
   load per transformed pair. *)
let transform_calls = Sm_obs.Metrics.counter "ot.transform_calls"

module Make (O : Op_sig.S) = struct
  let apply_seq s ops = List.fold_left O.apply s ops

  (* [cross] and [include_one] implement the classic recursive control
     algorithm.  [include_one a right] threads a single operation [a]
     through the whole concurrent sequence [right], collecting both a's
     final form (possibly split into pieces) and [right] re-expressed to
     apply after [a].  Termination: every recursive call strictly shortens
     [right]. *)
  let rec cross ~incoming ~applied ~tie =
    match incoming with
    | [] -> ([], applied)
    | a :: rest ->
      let a', applied' = include_one a ~applied ~tie in
      let rest', applied'' = cross ~incoming:rest ~applied:applied' ~tie in
      (a' @ rest', applied'')

  and include_one a ~applied ~tie =
    match applied with
    | [] -> ([ a ], [])
    | b :: bs ->
      Sm_obs.Metrics.add transform_calls 2;
      let a_pieces = O.transform a ~against:b ~tie in
      let b_pieces = O.transform b ~against:a ~tie:(Side.flip tie) in
      let a_final, bs' = cross ~incoming:a_pieces ~applied:bs ~tie in
      (a_final, b_pieces @ bs')

  let transform_op a ~against ~tie = fst (include_one a ~applied:against ~tie)
  let transform_seq ops ~against ~tie = fst (cross ~incoming:ops ~applied:against ~tie)

  let merge ~applied ~children ~tie =
    List.fold_left
      (fun serialized child ->
        let child' = transform_seq child ~against:serialized ~tie in
        serialized @ child')
      applied children
end
