(* Process-wide counters across every instantiation: the runtime reads
   deltas around each merge (merges are serialized per runtime by the global
   lock) to attribute transform and compaction work to individual merges.
   Gated on Metrics.set_enabled, so the disabled cost in this hot loop is
   one atomic load per transformed pair. *)
let transform_calls = Sm_obs.Metrics.counter "ot.transform_calls"
let compact_in = Sm_obs.Metrics.counter "ot.compact_in"
let compact_out = Sm_obs.Metrics.counter "ot.compact_out"

module Make (O : Op_sig.S) = struct
  let apply_seq s ops = List.fold_left O.apply s ops

  (* [cross_rec] and [include_one] implement the classic recursive control
     algorithm.  [include_one a right] threads a single operation [a]
     through the whole concurrent sequence [right], collecting both a's
     final form (possibly split into pieces) and [right] re-expressed to
     apply after [a].  Termination: every recursive call strictly shortens
     [right]. *)
  let rec cross_rec ~incoming ~applied ~tie =
    match incoming with
    | [] -> ([], applied)
    | a :: rest ->
      let a', applied' = include_one a ~applied ~tie in
      let rest', applied'' = cross_rec ~incoming:rest ~applied:applied' ~tie in
      (a' @ rest', applied'')

  and include_one a ~applied ~tie =
    match applied with
    | [] -> ([ a ], [])
    | b :: bs ->
      Sm_obs.Metrics.add transform_calls 2;
      let a_pieces = O.transform a ~against:b ~tie in
      let b_pieces = O.transform b ~against:a ~tie:(Side.flip tie) in
      let a_final, bs' = cross_rec ~incoming:a_pieces ~applied:bs ~tie in
      (a_final, b_pieces @ bs')

  (* Fast-path predicate: every pair across the two sequences commutes, so
     the textbook cross would return both sequences verbatim (O.commutes
     promises identity transforms in both directions — a promise lib/check
     verifies against the real transform).  Checked only at the entry
     points below, never inside the recursion, so a non-commuting workload
     pays one short-circuiting sweep of cheap comparisons, not a quadratic
     re-check per recursion level. *)
  let seqs_commute incoming applied =
    List.for_all (fun a -> List.for_all (fun b -> O.commutes a b) applied) incoming

  let cross ~incoming ~applied ~tie =
    match (incoming, applied) with
    | [], _ | _, [] -> (incoming, applied)
    | _ ->
      if seqs_commute incoming applied then (incoming, applied)
      else cross_rec ~incoming ~applied ~tie

  let transform_op a ~against ~tie =
    match against with
    | [] -> [ a ]
    | _ ->
      if seqs_commute [ a ] against then [ a ] else fst (include_one a ~applied:against ~tie)

  let transform_seq ops ~against ~tie = fst (cross ~incoming:ops ~applied:against ~tie)

  (* The paper's merge over the accumulated serialization, kept as a list of
     chunks (newest first) instead of one flat list: each child transforms
     against every earlier chunk in order — valid because including into a
     concatenation is including into its parts sequentially — and the flat
     result is concatenated once at the end.  The repeated
     [serialized @ child'] of the textbook fold made MergeAll over k
     children O(k * total) in list appends; this is linear in the output.
     The transform work (and Metrics count) is identical to the textbook
     fold's. *)
  let merge ~applied ~children ~tie =
    let chunks_rev =
      List.fold_left
        (fun chunks_rev child ->
          let child' =
            List.fold_left
              (fun ops chunk -> transform_seq ops ~against:chunk ~tie)
              child (List.rev chunks_rev)
          in
          child' :: chunks_rev)
        [ applied ] children
    in
    List.concat (List.rev chunks_rev)

  (* Metered journal compaction: what Workspace.merge_child runs on child
     journals when the compaction flag is on.  Singleton/empty journals
     cannot shrink, so they skip both O.compact and the metering. *)
  let compact ops =
    match ops with
    | [] | [ _ ] -> ops
    | _ ->
      let ops' = O.compact ops in
      if Sm_obs.Metrics.is_enabled () then begin
        Sm_obs.Metrics.add compact_in (List.length ops);
        Sm_obs.Metrics.add compact_out (List.length ops')
      end;
      ops'
end
