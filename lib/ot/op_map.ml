module Make (Key : Op_sig.ORDERED_ELT) (Value : Op_sig.ELT) = struct
  module Key_map = Map.Make (Key)

  type state = Value.t Key_map.t

  type op =
    | Put of Key.t * Value.t
    | Remove of Key.t

  let put k v = Put (k, v)
  let remove k = Remove k
  let key_of = function Put (k, _) -> k | Remove k -> k

  let apply s = function
    | Put (k, v) -> Key_map.add k v s
    | Remove k -> Key_map.remove k s

  let transform a ~against:b ~tie =
    if Key.compare (key_of a) (key_of b) <> 0 then [ a ]
    else
      match a, b with
      (* identical idempotent intentions never conflict *)
      | Remove _, Remove _ -> [ a ]
      | Put (_, va), Put (_, vb) when Value.equal va vb -> [ a ]
      | (Put _ | Remove _), (Put _ | Remove _) ->
        if Side.incoming_wins tie.Side.value then [ a ] else []

  (* Per-key last-writer-wins: only a key's final op is observable.  Kept in
     the order the surviving ops appeared, scanning newest-first so the
     whole pass is O(n log n). *)
  let compact = function
    | ([] | [ _ ]) as ops -> ops
    | ops ->
      let seen = ref Key_map.empty in
      List.fold_left
        (fun acc op ->
          let k = key_of op in
          if Key_map.mem k !seen then acc
          else begin
            seen := Key_map.add k () !seen;
            op :: acc
          end)
        [] (List.rev ops)

  let commutes a b =
    Key.compare (key_of a) (key_of b) <> 0
    ||
    match (a, b) with
    | Remove _, Remove _ -> true
    | Put (_, va), Put (_, vb) -> Value.equal va vb
    | Put _, Remove _ | Remove _, Put _ -> false

  (* Rebuild the balanced tree node by node (6 words each: header +
     l/v/d/r/h); keys and values stay shared. *)
  let copy_state s = Key_map.fold Key_map.add s Key_map.empty
  let state_size s = Op_sig.word_bytes + (6 * Op_sig.word_bytes * Key_map.cardinal s)

  let equal_state = Key_map.equal Value.equal

  let pp_state ppf s =
    let pp_binding ppf (k, v) = Format.fprintf ppf "%a -> %a" Key.pp k Value.pp v in
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") pp_binding)
      (Key_map.bindings s)

  let pp_op ppf = function
    | Put (k, v) -> Format.fprintf ppf "put(%a, %a)" Key.pp k Value.pp v
    | Remove k -> Format.fprintf ppf "remove(%a)" Key.pp k
end
