(** Mergeable text: range insert/delete over documents, collaborative-editing
    style (the paper cites Ellis & Gibbs and the CSCW line of work — this is
    the classic string OT those systems use).

    Unlike {!Op_list}, deletions cover ranges, so a transform can {e split} a
    delete around a concurrently inserted span — the one-to-many case the
    control algorithm must handle.

    The state is representation-polymorphic: a flat string (the paper's
    model, O(n) per edit) or a chunked {!Rope} (O(log n + |op|) per edit).
    {!of_string} picks the representation from the [SM_ROPE] switch; both
    behave identically — same lengths, digests and error messages — and the
    flat model stays a CI-tested baseline. *)

type state

type op =
  | Ins of int * string  (** [Ins (pos, s)]: insert [s] before byte position [pos]. *)
  | Del of int * int  (** [Del (pos, len)]: delete [len] bytes starting at [pos]; [len > 0]. *)

include Op_sig.S with type state := state and type op := op

val ins : int -> string -> op

val del : pos:int -> len:int -> op
(** @raise Invalid_argument if [len <= 0]. *)

(** {1 Representation} *)

val of_string : string -> state
(** Build a state in the currently selected representation (rope unless
    [SM_ROPE=0] / {!set_rope}[ false]). *)

val flat_of_string : string -> state
(** Force the flat-string representation, whatever the switch says. *)

val rope_of_string : string -> state
(** Force the rope representation, whatever the switch says. *)

val to_string : state -> string
(** Flatten to the document bytes.  O(1) for flat states and single-chunk
    ropes; O(n) otherwise. *)

val length : state -> int
(** O(1) in both representations. *)

val is_rope : state -> bool

val rope_enabled : unit -> bool
(** Whether {!of_string} currently builds ropes.  Defaults to [true];
    the [SM_ROPE] environment variable set to ["0"], ["off"] or ["false"]
    flips the initial value. *)

val set_rope : bool -> unit
(** Select the representation for subsequent {!of_string} calls.  Existing
    states keep the representation they were built with. *)
