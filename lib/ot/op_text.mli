(** Mergeable text: range insert/delete over strings, collaborative-editing
    style (the paper cites Ellis & Gibbs and the CSCW line of work — this is
    the classic string OT those systems use).

    Unlike {!Op_list}, deletions cover ranges, so a transform can {e split} a
    delete around a concurrently inserted span — the one-to-many case the
    control algorithm must handle. *)

type state = string

type op =
  | Ins of int * string  (** [Ins (pos, s)]: insert [s] before byte position [pos]. *)
  | Del of int * int  (** [Del (pos, len)]: delete [len] bytes starting at [pos]; [len > 0]. *)

include Op_sig.S with type state := state and type op := op

val ins : int -> string -> op

val del : pos:int -> len:int -> op
(** @raise Invalid_argument if [len <= 0]. *)
