(** Signatures shared by all operation types of the OT substrate.

    Every mergeable data structure is described by a module of type {!S}: a
    state, an operation type, an interpreter [apply], and an inclusion
    transform [transform].  The transformation control algorithm
    ({!module:Control}) and the Spawn/Merge runtime are parametric in {!S}. *)

(** Element of a container (list, queue, ...). *)
module type ELT = sig
  type t

  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

(** Element with a total order (sets, map keys). *)
module type ORDERED_ELT = sig
  include ELT

  val compare : t -> t -> int
end

(** An operation type together with its interpreter and inclusion transform. *)
module type S = sig
  type state
  type op

  val apply : state -> op -> state
  (** [apply s op] interprets [op] on [s].  States are persistent: the input
      is never mutated.  Operations produced by user-facing accessors against
      the current state are always in range; [apply] raises
      [Invalid_argument] on positions that no correct transform can produce,
      which turns transformation bugs into loud failures. *)

  val transform : op -> against:op -> tie:Side.policy -> op list
  (** [transform a ~against:b ~tie] is the inclusion transform IT(a, b): it
      rewrites [a] — defined on the same state as [b] — so that the result
      applies {e after} [b] while preserving [a]'s intention.  The result is
      a list because an operation can be split (a range delete around a
      concurrent insert) or dropped entirely (deleting an element someone
      already deleted).  [tie] resolves direct conflicts; see {!Side}. *)

  val equal_state : state -> state -> bool

  val pp_state : Format.formatter -> state -> unit
  val pp_op : Format.formatter -> op -> unit
end
