(** Signatures shared by all operation types of the OT substrate.

    Every mergeable data structure is described by a module of type {!S}: a
    state, an operation type, an interpreter [apply], and an inclusion
    transform [transform].  The transformation control algorithm
    ({!module:Control}) and the Spawn/Merge runtime are parametric in {!S}. *)

(** Element of a container (list, queue, ...). *)
module type ELT = sig
  type t

  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

(** Element with a total order (sets, map keys). *)
module type ORDERED_ELT = sig
  include ELT

  val compare : t -> t -> int
end

(** An operation type together with its interpreter and inclusion transform. *)
module type S = sig
  type state
  type op

  val apply : state -> op -> state
  (** [apply s op] interprets [op] on [s].  States are persistent: the input
      is never mutated.  Operations produced by user-facing accessors against
      the current state are always in range; [apply] raises
      [Invalid_argument] on positions that no correct transform can produce,
      which turns transformation bugs into loud failures. *)

  val transform : op -> against:op -> tie:Side.policy -> op list
  (** [transform a ~against:b ~tie] is the inclusion transform IT(a, b): it
      rewrites [a] — defined on the same state as [b] — so that the result
      applies {e after} [b] while preserving [a]'s intention.  The result is
      a list because an operation can be split (a range delete around a
      concurrent insert) or dropped entirely (deleting an element someone
      already deleted).  [tie] resolves direct conflicts; see {!Side}. *)

  val compact : op list -> op list
  (** Normalize a {e sequential} journal (each op defined on its
      predecessor's output) to an equivalent, usually shorter one:
      [apply_seq s (compact ops) = apply_seq s ops] for every state [s] on
      which [ops] is valid.  Rewrites must be state-independent (adjacent
      coalescing, last-writer-wins, cancellation) so the claim holds on the
      child's state {e and} on any state a concurrent merge produces —
      lib/check's Compact property verifies exactly that, including that
      compacted and raw journals transform to the same merged result.
      Identity is always sound ({!Default}). *)

  val commutes : op -> op -> bool
  (** Conservative hint for the control algorithm's fast path: [commutes a b]
      promises [transform a ~against:b ~tie = [a]] {e and}
      [transform b ~against:a ~tie = [b]] under {e every} tie policy, so the
      pair's cross can be skipped without changing the result sequences.
      [false] is always sound ({!Default}); lib/check verifies the promise
      against the real transform. *)

  val copy_state : state -> state
  (** A structurally fresh value equal to the input: [equal_state (copy_state
      s) s] and identical [pp_state] rendering, but sharing no mutable-free
      heap structure with [s] beyond the element payloads.  States are
      persistent, so the runtime never {e needs} this — it exists to realize
      the paper's literal deep-copy-at-spawn model as a switchable baseline
      ({!Workspace.set_cow} off), making the copy-on-write representation's
      cost advantage measurable and its digests differentially checkable.
      Identity is sound only for unboxed scalars ({!Default}). *)

  val state_size : state -> int
  (** Approximate heap footprint of the state in bytes — what a deep copy of
      it would materialize.  Used for the [ws.copy_bytes] accounting and the
      spawn-cost bench; an estimate (container spines are counted, abstract
      element payloads are charged one word), not a precise [Obj.reachable]
      walk. *)

  val equal_state : state -> state -> bool

  val pp_state : Format.formatter -> state -> unit
  val pp_op : Format.formatter -> op -> unit
end

(** Bytes per OCaml word on a 64-bit runtime; the unit of the
    {!S.state_size} estimates. *)
let word_bytes = 8

(** Sound do-nothing implementations of the optional-strength members of
    {!S}, for operation modules that predate journal compaction (or whose
    semantics admit no state-independent rewrite): [include Op_sig.Default]
    after defining [op] and every property checked by lib/check holds
    vacuously. *)
module Default = struct
  let compact ops = ops
  let commutes _ _ = false

  (* Sound only when the state is an unboxed scalar (or the module is a test
     fixture that never runs under the deep-copy baseline): identity keeps
     every law trivially, it just makes the paper-mode copy free. *)
  let copy_state s = s
  let state_size _ = word_bytes
end
