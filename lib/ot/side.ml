type t =
  | Incoming
  | Applied

type policy =
  { position : t
  ; value : t
  }

let opposite = function Incoming -> Applied | Applied -> Incoming
let incoming_wins = function Incoming -> true | Applied -> false
let uniform side = { position = side; value = side }
let serialization = { position = Applied; value = Incoming }
let flip p = { position = opposite p.position; value = opposite p.value }

let pp ppf = function
  | Incoming -> Format.pp_print_string ppf "incoming"
  | Applied -> Format.pp_print_string ppf "applied"

let pp_policy ppf p = Format.fprintf ppf "{position=%a; value=%a}" pp p.position pp p.value
