(** Tie-breaking policies for inclusion transforms.

    Operational transformation must resolve {e direct conflicts} by a rule
    both "sides" of a transformation apply consistently, otherwise the
    transformed histories diverge (violating convergence/TP1).  A transform
    call [transform a ~against:b ~tie] names [a] the {e incoming} operation
    (being rewritten to apply after [b]) and [b] the {e applied} one.

    Conflicts come in two independent classes, so a {!policy} carries one
    side per class:

    - {b positional ties} — two inserts at the same list/text/tree position.
      The winning side's element ends up first (leftmost).
    - {b value conflicts} — two assignments to the same register, map key or
      list slot, an add/remove pair on the same set element, two relabels of
      the same tree node.  The winning side's intention survives; the loser
      is dropped.

    The control algorithm ({!Control}) keeps a policy consistent by
    {!flip}ping it when transforming the opposite history.  The Spawn/Merge
    runtime merges with {!serialization}: child operations behave as if they
    executed {e after} the parent's — they keep out of the parent's inserted
    positions (position = [Applied]) but overwrite conflicting values
    (value = [Incoming], "later merged wins").  This reproduces the paper's
    Listing 1 result [\[1;2;3;4;5\]] and makes merge order significant:
    [merge (x, y) <> merge (y, x)]. *)

type t =
  | Incoming  (** the operation being transformed wins *)
  | Applied  (** the operation transformed against wins *)

type policy =
  { position : t  (** who wins equal-position insert ties *)
  ; value : t  (** who wins same-target value conflicts *)
  }

val opposite : t -> t

val incoming_wins : t -> bool

val uniform : t -> policy
(** Same side for both conflict classes. *)

val serialization : policy
(** [{ position = Applied; value = Incoming }] — the runtime's merge policy:
    later-merged operations order after earlier ones and win value
    conflicts. *)

val flip : policy -> policy
(** Swap the viewpoint: what [Incoming] wins on one side, [Applied] wins on
    the other. *)

val pp : Format.formatter -> t -> unit

val pp_policy : Format.formatter -> policy -> unit
