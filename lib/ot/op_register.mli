(** Mergeable single-value registers.

    [Assign v] replaces the whole value.  Two concurrent assignments are a
    direct conflict resolved by {!Side.t}: under the runtime's
    "later merged wins" policy the child merged last keeps its value —
    deterministic because merge order is deterministic. *)

module Make (V : Op_sig.ELT) : sig
  type state = V.t

  type op = Assign of V.t

  include Op_sig.S with type state := state and type op := op

  val assign : V.t -> op
end
