module Make (V : Op_sig.ELT) = struct
  type state = V.t
  type op = Assign of V.t

  let assign v = Assign v
  let apply _ (Assign v) = v

  let transform a ~against:_ ~tie =
    match a with Assign _ -> if Side.incoming_wins tie.Side.value then [ a ] else []

  let equal_state = V.equal
  let pp_state = V.pp
  let pp_op ppf (Assign v) = Format.fprintf ppf "assign(%a)" V.pp v
end
