module Make (V : Op_sig.ELT) = struct
  type state = V.t
  type op = Assign of V.t

  let assign v = Assign v
  let apply _ (Assign v) = v

  let transform a ~against:b ~tie =
    match (a, b) with
    (* identical idempotent intentions never conflict (mirrors Op_map) *)
    | Assign va, Assign vb when V.equal va vb -> [ a ]
    | Assign _, Assign _ -> if Side.incoming_wins tie.Side.value then [ a ] else []

  (* Only the last assignment of a sequential journal is observable. *)
  let compact ops = match List.rev ops with [] | [ _ ] -> ops | last :: _ -> [ last ]
  let commutes (Assign va) (Assign vb) = V.equal va vb

  (* The state IS the element payload, which deep copies never duplicate. *)
  let copy_state s = s
  let state_size _ = Op_sig.word_bytes

  let equal_state = V.equal
  let pp_state = V.pp
  let pp_op ppf (Assign v) = Format.fprintf ppf "assign(%a)" V.pp v
end
