(** Mergeable lists: the paper's flagship example (Figures 1 and 2).

    Operations are single-element [ins(i, x)], [del(i)] and [set(i, x)] on an
    index-addressed list.  The inclusion transform shifts indices across
    concurrent inserts/deletes, drops a delete or set whose target was deleted
    concurrently, and breaks insert-insert and set-set ties by {!Side.t}. *)

module Make (Elt : Op_sig.ELT) : sig
  type elt = Elt.t
  type state = elt list

  type op =
    | Ins of int * elt  (** [Ins (i, x)]: insert [x] before position [i]; [i] may equal the length (append). *)
    | Del of int  (** [Del i]: delete the element at position [i]. *)
    | Set of int * elt  (** [Set (i, x)]: replace the element at position [i]. *)

  include Op_sig.S with type state := state and type op := op

  val ins : int -> elt -> op
  val del : int -> op
  val set : int -> elt -> op
end
