(* The document state carries its own representation: the classic flat
   string (O(n) splices — the model the paper's examples use) or a chunked
   rope (O(log n + |op|) edits, the production representation).  The two are
   observationally identical — same lengths, same rendered bytes, same
   digests — which the rope/flat differential battery and the [rope] fuzz
   oracle enforce.  Representation is sticky through [apply]: a flat state
   stays flat (byte-for-byte the historical splice code), a rope stays a
   rope, so a whole run commits to one representation and flag flips only
   matter at [of_string] time. *)
type state =
  | Flat of string
  | Rope of Rope.t

type op =
  | Ins of int * string
  | Del of int * int

(* Representation switch, mirroring Workspace's SM_COW pattern: rope is the
   default, [SM_ROPE=0] (or "off"/"false") or [set_rope false] selects the
   flat baseline that CI keeps honest. *)
let rope_flag =
  Atomic.make
    (match Sys.getenv_opt "SM_ROPE" with Some ("0" | "off" | "false") -> false | _ -> true)

let rope_enabled () = Atomic.get rope_flag
let set_rope enabled = Atomic.set rope_flag enabled

let of_string s = if rope_enabled () then Rope (Rope.of_string s) else Flat s
let flat_of_string s = Flat s
let rope_of_string s = Rope (Rope.of_string s)
let to_string = function Flat s -> s | Rope r -> Rope.to_string r
let length = function Flat s -> String.length s | Rope r -> Rope.length r
let is_rope = function Flat _ -> false | Rope _ -> true

let ins pos s = Ins (pos, s)

let del ~pos ~len =
  if len <= 0 then invalid_arg "Op_text.del: len must be positive";
  Del (pos, len)

(* Error messages are rendered from the logical byte length only, so they
   are byte-identical across representations — shrunken fuzz reports must
   not leak which backend produced them. *)
let check_ins pos n =
  if pos < 0 || pos > n then
    invalid_arg (Printf.sprintf "Op_text.apply: ins position %d out of range (len %d)" pos n)

let check_del pos len n =
  if len <= 0 then invalid_arg "Op_text.apply: non-positive delete length";
  if pos < 0 || pos + len > n then
    invalid_arg (Printf.sprintf "Op_text.apply: del range [%d,%d) out of range (len %d)" pos (pos + len) n)

let apply st op =
  match st with
  | Flat s -> (
    let n = String.length s in
    match op with
    | Ins (pos, t) ->
      check_ins pos n;
      let tl = String.length t in
      let b = Bytes.create (n + tl) in
      Bytes.blit_string s 0 b 0 pos;
      Bytes.blit_string t 0 b pos tl;
      Bytes.blit_string s pos b (pos + tl) (n - pos);
      Flat (Bytes.unsafe_to_string b)
    | Del (pos, len) ->
      check_del pos len n;
      let b = Bytes.create (n - len) in
      Bytes.blit_string s 0 b 0 pos;
      Bytes.blit_string s (pos + len) b pos (n - pos - len);
      Flat (Bytes.unsafe_to_string b))
  | Rope r -> (
    let n = Rope.length r in
    match op with
    | Ins (pos, t) ->
      check_ins pos n;
      Rope (Rope.insert r pos t)
    | Del (pos, len) ->
      check_del pos len n;
      Rope (Rope.delete r ~pos ~len))

let transform a ~against:b ~tie =
  match a, b with
  | Ins (p, s), Ins (q, t) ->
    if q < p || (q = p && not (Side.incoming_wins tie.Side.position)) then [ Ins (p + String.length t, s) ]
    else [ Ins (p, s) ]
  | Ins (p, s), Del (q, l) ->
    if p <= q then [ Ins (p, s) ]
    else if p >= q + l then [ Ins (p - l, s) ]
    else [ Ins (q, s) ] (* insertion point was deleted: collapse to the hole *)
  | Del (p, l), Ins (q, t) ->
    let tl = String.length t in
    if q <= p then [ Del (p + tl, l) ]
    else if q >= p + l then [ Del (p, l) ]
    else
      (* the insert landed strictly inside the deleted range: delete the part
         before it, then (in post-first-delete coordinates) the part after *)
      [ Del (p, q - p); Del (p + tl, l - (q - p)) ]
  | Del (p, l), Del (q, m) ->
    let overlap = max 0 (min (p + l) (q + m) - max p q) in
    let remaining = l - overlap in
    if remaining = 0 then []
    else
      let p' = if p <= q then p else if p >= q + m then p - m else q in
      [ Del (p', remaining) ]

(* Adjacent coalescing, iterated to a fixpoint.  An insert landing inside
   (or at either edge of) the previous insert's span splices into it; a
   delete wholly inside the previous insert's span cuts out of it
   (cancelling both when nothing is left); back-to-back deletes touching at
   a boundary fuse into one range.  All rules are span-arithmetic only —
   never looking at the underlying document — so they are state-independent,
   and each strictly shortens the sequence. *)
let compact ops =
  let splice s k t = String.sub s 0 k ^ t ^ String.sub s k (String.length s - k) in
  let cut s k m = String.sub s 0 k ^ String.sub s (k + m) (String.length s - k - m) in
  let rec sweep changed acc = function
    | Ins (p, s) :: Ins (q, t) :: rest when p <= q && q <= p + String.length s ->
      sweep true acc (Ins (p, splice s (q - p) t) :: rest)
    | Ins (p, s) :: Del (q, m) :: rest when p <= q && q + m <= p + String.length s ->
      if m = String.length s then sweep true acc rest
      else sweep true acc (Ins (p, cut s (q - p) m) :: rest)
    | Del (p, l) :: Del (q, m) :: rest when q = p || q + m = p ->
      sweep true acc (Del (min p q, l + m) :: rest)
    | op :: rest -> sweep changed (op :: acc) rest
    | [] -> (changed, List.rev acc)
  in
  let rec fix ops =
    match sweep false [] ops with
    | false, ops -> ops
    | true, ops -> fix ops
  in
  match ops with [] | [ _ ] -> ops | _ -> fix ops

let commutes _ _ = false

(* The deep copy keeps its cost proportional to the representation: a fresh
   string for a flat document, a structure-preserving chunk copy for a
   rope.  Either way the result shares nothing with the source, which the
   COW sharing assertions rely on. *)
let copy_state = function
  | Flat s -> Flat (Bytes.unsafe_to_string (Bytes.of_string s))
  | Rope r -> Rope (Rope.copy r)

let state_size = function
  | Flat s -> Op_sig.word_bytes + String.length s
  | Rope r -> Op_sig.word_bytes + Rope.size_bytes r

let equal_state a b =
  match a, b with
  | Flat x, Flat y -> String.equal x y
  | Rope x, Rope y -> Rope.equal x y
  | Flat x, Rope y | Rope y, Flat x -> Rope.equal_string y x

(* Renders exactly what [Format.fprintf ppf "%S"] would print for the
   flattened document — workspace digests hash this text, so the escaper
   must match [String.escaped] byte for byte or the representation would
   leak into digests. *)
let pp_escaped ppf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Format.pp_print_string ppf "\\\""
      | '\\' -> Format.pp_print_string ppf "\\\\"
      | '\n' -> Format.pp_print_string ppf "\\n"
      | '\t' -> Format.pp_print_string ppf "\\t"
      | '\r' -> Format.pp_print_string ppf "\\r"
      | '\b' -> Format.pp_print_string ppf "\\b"
      | ' ' .. '~' -> Format.pp_print_char ppf c
      | c -> Format.fprintf ppf "\\%03d" (Char.code c))
    s

let pp_state ppf = function
  | Flat s -> Format.fprintf ppf "%S" s
  | Rope r ->
    Format.pp_print_char ppf '"';
    Rope.iter_chunks (pp_escaped ppf) r;
    Format.pp_print_char ppf '"'

let pp_op ppf = function
  | Ins (p, s) -> Format.fprintf ppf "ins(%d, %S)" p s
  | Del (p, l) -> Format.fprintf ppf "del(%d, %d)" p l
