type state = string

type op =
  | Ins of int * string
  | Del of int * int

let ins pos s = Ins (pos, s)

let del ~pos ~len =
  if len <= 0 then invalid_arg "Op_text.del: len must be positive";
  Del (pos, len)

let apply s op =
  let n = String.length s in
  match op with
  | Ins (pos, t) ->
    if pos < 0 || pos > n then
      invalid_arg (Printf.sprintf "Op_text.apply: ins position %d out of range (len %d)" pos n);
    let tl = String.length t in
    let b = Bytes.create (n + tl) in
    Bytes.blit_string s 0 b 0 pos;
    Bytes.blit_string t 0 b pos tl;
    Bytes.blit_string s pos b (pos + tl) (n - pos);
    Bytes.unsafe_to_string b
  | Del (pos, len) ->
    if len <= 0 then invalid_arg "Op_text.apply: non-positive delete length";
    if pos < 0 || pos + len > n then
      invalid_arg (Printf.sprintf "Op_text.apply: del range [%d,%d) out of range (len %d)" pos (pos + len) n);
    let b = Bytes.create (n - len) in
    Bytes.blit_string s 0 b 0 pos;
    Bytes.blit_string s (pos + len) b pos (n - pos - len);
    Bytes.unsafe_to_string b

let transform a ~against:b ~tie =
  match a, b with
  | Ins (p, s), Ins (q, t) ->
    if q < p || (q = p && not (Side.incoming_wins tie.Side.position)) then [ Ins (p + String.length t, s) ]
    else [ Ins (p, s) ]
  | Ins (p, s), Del (q, l) ->
    if p <= q then [ Ins (p, s) ]
    else if p >= q + l then [ Ins (p - l, s) ]
    else [ Ins (q, s) ] (* insertion point was deleted: collapse to the hole *)
  | Del (p, l), Ins (q, t) ->
    let tl = String.length t in
    if q <= p then [ Del (p + tl, l) ]
    else if q >= p + l then [ Del (p, l) ]
    else
      (* the insert landed strictly inside the deleted range: delete the part
         before it, then (in post-first-delete coordinates) the part after *)
      [ Del (p, q - p); Del (p + tl, l - (q - p)) ]
  | Del (p, l), Del (q, m) ->
    let overlap = max 0 (min (p + l) (q + m) - max p q) in
    let remaining = l - overlap in
    if remaining = 0 then []
    else
      let p' = if p <= q then p else if p >= q + m then p - m else q in
      [ Del (p', remaining) ]

(* Adjacent coalescing, iterated to a fixpoint.  An insert landing inside
   (or at either edge of) the previous insert's span splices into it; a
   delete wholly inside the previous insert's span cuts out of it
   (cancelling both when nothing is left); back-to-back deletes touching at
   a boundary fuse into one range.  All rules are span-arithmetic only —
   never looking at the underlying document — so they are state-independent,
   and each strictly shortens the sequence. *)
let compact ops =
  let splice s k t = String.sub s 0 k ^ t ^ String.sub s k (String.length s - k) in
  let cut s k m = String.sub s 0 k ^ String.sub s (k + m) (String.length s - k - m) in
  let rec sweep changed acc = function
    | Ins (p, s) :: Ins (q, t) :: rest when p <= q && q <= p + String.length s ->
      sweep true acc (Ins (p, splice s (q - p) t) :: rest)
    | Ins (p, s) :: Del (q, m) :: rest when p <= q && q + m <= p + String.length s ->
      if m = String.length s then sweep true acc rest
      else sweep true acc (Ins (p, cut s (q - p) m) :: rest)
    | Del (p, l) :: Del (q, m) :: rest when q = p || q + m = p ->
      sweep true acc (Del (min p q, l + m) :: rest)
    | op :: rest -> sweep changed (op :: acc) rest
    | [] -> (changed, List.rev acc)
  in
  let rec fix ops =
    match sweep false [] ops with
    | false, ops -> ops
    | true, ops -> fix ops
  in
  match ops with [] | [ _ ] -> ops | _ -> fix ops

let commutes _ _ = false

(* The one genuinely O(n) deep copy: a fresh string of the document. *)
let copy_state s = Bytes.unsafe_to_string (Bytes.of_string s)
let state_size s = Op_sig.word_bytes + String.length s

let equal_state = String.equal
let pp_state ppf s = Format.fprintf ppf "%S" s

let pp_op ppf = function
  | Ins (p, s) -> Format.fprintf ppf "ins(%d, %S)" p s
  | Del (p, l) -> Format.fprintf ppf "del(%d, %d)" p l
