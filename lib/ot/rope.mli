(** Chunked ropes: balanced trees of string chunks for O(log n) edits on
    large documents.

    The backing store behind {!Op_text}'s rope representation.  All
    operations preserve the structural invariants that {!check} validates:
    cached lengths and heights are honest, every leaf below the root is
    nonempty and at most [max_chunk] bytes, and sibling subtree heights
    differ by at most 2 (the stdlib [Set] balance bound), so depth is
    O(log chunks). *)

type t

val max_chunk : int
(** Upper bound on a leaf's size (2048 bytes). *)

val target_chunk : int
(** Leaf size used when cutting bulk text (1024 bytes). *)

val empty : t

val of_string : string -> t
(** Balanced by construction; strings up to [max_chunk] become one leaf. *)

val to_string : t -> string

val length : t -> int
(** O(1) — cached at every node. *)

val is_empty : t -> bool

val join : t -> t -> t
(** Concatenation.  O(|height difference|); fuses small edge chunks. *)

val split : t -> int -> t * t
(** [split t i] = (first [i] bytes, rest).  Positions are clamped to
    [[0, length t]].  O(log n). *)

val insert : t -> int -> string -> t
(** [insert t pos s]: [s] spliced in before byte [pos].  O(log n + |s|). *)

val delete : t -> pos:int -> len:int -> t
(** Remove [len] bytes at [pos].  O(log n). *)

val sub : t -> int -> int -> string
(** [sub t pos len] flattens just the addressed slice. *)

val iter_chunks : (string -> unit) -> t -> unit
(** Visit every chunk left to right — the streaming interface digesting and
    printing use so they never flatten the document. *)

val fold_chunks : ('a -> string -> 'a) -> 'a -> t -> 'a

val equal : t -> t -> bool
(** Content equality, chunk-boundary independent, without flattening. *)

val equal_string : t -> string -> bool

val copy : t -> t
(** Structure-preserving deep copy with fresh chunk strings. *)

val size_bytes : t -> int
(** Approximate heap footprint (chunk bytes + per-block bookkeeping). *)

val height : t -> int

type stats =
  { chunks : int
  ; depth : int
  ; min_leaf : int
  ; max_leaf : int
  }

val stats : t -> stats

val check : t -> (unit, string) result
(** Validate the structural invariants; [Error] describes the first
    violation found. *)
