module Data = struct
  include Sm_ot.Op_text

  let type_name = "text"
end

type handle = (string, Sm_ot.Op_text.op) Workspace.key

let key ~name = Workspace.create_key (module Data) ~name
let get = Workspace.read
let length ws h = String.length (get ws h)

let insert ws h pos s =
  if String.length s > 0 then Workspace.update ws h (Sm_ot.Op_text.ins pos s)

let delete ws h ~pos ~len =
  if len > 0 then Workspace.update ws h (Sm_ot.Op_text.del ~pos ~len)

let append ws h s = insert ws h (length ws h) s
