module Data = struct
  include Sm_ot.Op_text

  let type_name = "text"
end

type handle = (Sm_ot.Op_text.state, Sm_ot.Op_text.op) Workspace.key

let key ~name = Workspace.create_key (module Data) ~name
let init ws h s = Workspace.init ws h (Sm_ot.Op_text.of_string s)
let state = Workspace.read
let get ws h = Sm_ot.Op_text.to_string (Workspace.read ws h)
let length ws h = Sm_ot.Op_text.length (Workspace.read ws h)

let insert ws h pos s =
  if String.length s > 0 then Workspace.update ws h (Sm_ot.Op_text.ins pos s)

let delete ws h ~pos ~len =
  if len > 0 then Workspace.update ws h (Sm_ot.Op_text.del ~pos ~len)

let append ws h s = insert ws h (length ws h) s
