module Data = struct
  include Sm_ot.Op_counter

  let type_name = "counter"
end

type handle = (int, Sm_ot.Op_counter.op) Workspace.key

let key ~name = Workspace.create_key (module Data) ~name
let get = Workspace.read
let add ws h n = Workspace.update ws h (Sm_ot.Op_counter.add n)
let incr ws h = add ws h 1
let decr ws h = add ws h (-1)
