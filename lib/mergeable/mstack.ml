module Make (Elt : Sm_ot.Op_sig.ELT) = struct
  module Op = Sm_ot.Op_stack.Make (Elt)

  module Data = struct
    include Op

    let type_name = "stack"
  end

  type handle = (Elt.t list, Op.op) Workspace.key

  let key ~name = Workspace.create_key (module Data) ~name
  let get = Workspace.read
  let depth ws h = List.length (get ws h)
  let push ws h x = Workspace.update ws h (Op.push x)

  let pop ws h =
    match get ws h with
    | [] -> None
    | x :: _ ->
      Workspace.update ws h Op.pop;
      Some x

  let peek ws h = match get ws h with [] -> None | x :: _ -> Some x
end
