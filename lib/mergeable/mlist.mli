(** Mergeable lists — the data structure of the paper's Listing 1.

    Helpers read the value through the workspace and journal positional
    operations; concurrent edits from other tasks reconcile at merge time via
    {!Sm_ot.Op_list} transforms. *)

module Make (Elt : Sm_ot.Op_sig.ELT) : sig
  module Op : module type of Sm_ot.Op_list.Make (Elt)

  module Data : Data.S with type state = Elt.t list and type op = Op.op

  type handle = (Elt.t list, Op.op) Workspace.key

  val key : name:string -> handle

  val get : Workspace.t -> handle -> Elt.t list

  val length : Workspace.t -> handle -> int

  val nth : Workspace.t -> handle -> int -> Elt.t option

  val append : Workspace.t -> handle -> Elt.t -> unit

  val insert : Workspace.t -> handle -> int -> Elt.t -> unit
  (** @raise Invalid_argument if the position is out of range. *)

  val delete : Workspace.t -> handle -> int -> unit

  val set : Workspace.t -> handle -> int -> Elt.t -> unit
end
