module type S = sig
  include Sm_ot.Op_sig.S

  val type_name : string
end
