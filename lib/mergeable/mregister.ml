module Make (V : Sm_ot.Op_sig.ELT) = struct
  module Op = Sm_ot.Op_register.Make (V)

  module Data = struct
    include Op

    let type_name = "register"
  end

  type handle = (V.t, Op.op) Workspace.key

  let key ~name = Workspace.create_key (module Data) ~name
  let get = Workspace.read
  let set ws h v = Workspace.update ws h (Op.assign v)
end
