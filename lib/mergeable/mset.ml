module Make (Elt : Sm_ot.Op_sig.ORDERED_ELT) = struct
  module Op = Sm_ot.Op_set.Make (Elt)

  module Data = struct
    include Op

    let type_name = "set"
  end

  type handle = (Op.Elt_set.t, Op.op) Workspace.key

  let key ~name = Workspace.create_key (module Data) ~name
  let get = Workspace.read
  let mem ws h x = Op.Elt_set.mem x (get ws h)
  let cardinal ws h = Op.Elt_set.cardinal (get ws h)
  let elements ws h = Op.Elt_set.elements (get ws h)
  let add ws h x = Workspace.update ws h (Op.add x)
  let remove ws h x = Workspace.update ws h (Op.remove x)
end
