(** Task workspaces: named collections of mergeable values with operation
    journals — the data side of Spawn and Merge.

    Every task owns one workspace.  [Spawn] hands the child a {!copy} (fresh
    journals, shared persistent states) together with the parent's version
    {!snapshot}; while running, tasks mutate {e only their own} workspace
    through {!update}, which both applies the operation and records it in the
    value's journal.  [Merge] then calls {!merge_child}: each child journal is
    transformed (operational transformation, {!Sm_ot.Side.serialization}
    policy) against whatever the parent applied since the child's base
    version, and appended to the parent.  [Sync] re-bases the child with
    {!rebase_from}.

    Workspaces are deliberately {b not} thread-safe: the Spawn/Merge runtime
    guarantees each workspace is touched by one thread at a time (its owning
    task, or the parent during a merge while the child is parked), which is
    precisely how the paper's model eliminates data races — tasks never share
    mutable state, so there is nothing to lock.

    {2 Representation: persistent snapshots + journals (copy-on-write)}

    Each bound value is a {e cell}: an immutable state snapshot plus the
    journal of operations recorded since the cell was created or rebased.
    The snapshot materializes the value only up to an internal [applied]
    watermark; {!merge_child}/{!merge_ops} append transformed operations to
    the journal {e without} touching the snapshot, and the suffix is folded
    in lazily at the next observation ({!read}, {!update}, {!digest},
    {!equal}, {!pp}, or any share point below).  Interior tasks of a deep
    spawn tree therefore never pay an apply for operations merely flowing
    through them.

    Because states are persistent OCaml values, the share points —
    {!copy} (spawn), {!clone_full}, {!clone_trimmed}, {!rebase_from} —
    alias the parent's snapshots instead of copying them: sharing a
    workspace is O(cells), independent of state size, and the "copy" of
    copy-on-write is the O(1) pointer swap the next {!update} performs.
    Two process-global counters make this observable: [ws.cow_hits]
    (first write to a still-shared snapshot) and [ws.copy_bytes] (bytes
    deep-copied by the baseline below; always 0 under COW).

    {!set_cow} [false] switches to the paper's literal model — every share
    point materializes a structural deep copy per cell via
    [Data.S.copy_state] — kept as a differential baseline: states,
    journals and digests must be byte-identical either way (the fuzzer's
    [cow] oracle and the [SM_COW=0] CI job assert this). *)

type t

type ('s, 'o) key
(** A typed name for a mergeable value of state ['s] and operation ['o].
    Keys are global (create them at module level) and identity-based: the
    same key addresses "the same" value in a parent's and a child's
    workspace. *)

exception Unbound_key of string
(** Raised when reading or updating a key the workspace does not hold. *)

exception Already_bound of string
(** Raised by {!init} when the key is already bound, and by {!merge_child}
    when parent and child independently initialized the same key. *)

module Versions : sig
  type t
  (** Per-key journal positions — "how much of each value's history I have
      seen".  A child's {e base} is the parent's snapshot at spawn/sync
      time. *)

  val empty : t
  val pp : Format.formatter -> t -> unit
end

val version_in : Versions.t -> _ key -> int
(** The recorded version for a key ([0] when absent). *)

val create_key :
  (module Data.S with type state = 's and type op = 'o) -> name:string -> ('s, 'o) key
(** Mint a key for a mergeable type.  [name] is diagnostic. *)

val key_name : _ key -> string

val create : unit -> t
(** An empty workspace. *)

val init : t -> ('s, 'o) key -> 's -> unit
(** Bind a key to an initial state with an empty journal.  Initialization is
    not an operation: it does not journal and cannot be merged — initialize
    in the root task (or before spawning) and let children receive copies. *)

val mem : t -> _ key -> bool

val read : t -> ('s, 'o) key -> 's

val update : t -> ('s, 'o) key -> 'o -> unit
(** Apply an operation to the value and journal it.  All mutation of
    mergeable values must go through here — states themselves are
    persistent. *)

val update_trimming : t -> ('s, 'o) key -> 'o -> unit
(** Like {!update}, but trim the journal at the new head instead of
    retaining the operation: the version still advances, and
    {!journal_since} afterwards answers only from the new head.  For
    replicas applying remote operations they will never re-ship —
    journalling those would grow every replica with the full history. *)

val version_of : t -> _ key -> int
(** Total operations ever applied to this value in this workspace. *)

val journal : t -> ('s, 'o) key -> 'o list
(** The value's recorded operations (since creation, rebase, or the last
    truncation point) — what a merge would transmit. *)

val journal_since : t -> ('s, 'o) key -> version:int -> 'o list
(** The value's operations after [version] — the delta a replica that has
    seen [version] operations still needs.  [\[\]] when the replica is
    current ([version >= version_of]).
    @raise Invalid_argument if [version] predates the truncation point
    ({!truncate}) — the suffix is no longer available and the caller must
    fall back to a snapshot. *)

val key_names : t -> string list
(** Names of bound keys, in deterministic (creation-id) order. *)

val snapshot : t -> Versions.t
(** Current version of every bound key. *)

val op_count : t -> int
(** Total journalled (not yet truncated) operations across every bound key —
    what a merge of this workspace would transmit.  O(bindings). *)

val cell_count : t -> int
(** Number of bound keys — the [O(cells)] in "spawn is O(cells)". *)

val copy : t -> t
(** Child copy: same bindings and states, empty journals.  O(bindings) when
    {!cow_enabled} — the persistent states are shared, not deep-copied, so
    "copying" a workspace is cheap and copy-on-write comes for free (the
    paper's future-work optimization falls out of persistent data
    structures).  With COW off, each state is deep-copied
    ([Data.S.copy_state], metered in [ws.copy_bytes]). *)

val merge_child : parent:t -> child:t -> base:Versions.t -> unit
(** Merge a child's journals into the parent.  [base] must be the parent
    snapshot taken when the child's journals were last empty (spawn or
    sync).  For each key bound in both: compact the child's journal (when
    {!compaction_enabled}), transform it against the parent's operations
    since [base] and journal the result in the parent (the parent's state
    catches up lazily at its next observation).  Keys the
    child initialized itself are installed in the parent ({!Already_bound}
    if the parent initialized them too); keys the parent gained since spawn
    are untouched.  Deterministic given [base] and both journals. *)

val set_compaction : bool -> unit
(** Toggle journal compaction inside {!merge_child}/{!merge_ops} (process
    global, default on).  Compaction rewrites each child journal to an
    apply-equivalent normal form before transformation, so merged states and
    digests are identical either way — the switch exists so that equivalence
    can be measured and asserted. *)

val compaction_enabled : unit -> bool
(** Current {!set_compaction} setting. *)

val set_cow : bool -> unit
(** Toggle copy-on-write sharing at share points (process global, default
    on).  On: {!copy}/{!clone_full}/{!clone_trimmed}/{!rebase_from} alias
    the persistent state snapshots — O(cells) regardless of state size.
    Off: the paper's literal deep-copy model — each share point
    materializes a structural copy per cell ([Data.S.copy_state]), with
    the copied bytes metered in [ws.copy_bytes].  States, journals and
    digests are identical either way; the switch exists so that the
    equivalence can be measured (the spawn benchmark's speedup gate) and
    asserted (the fuzzer's [cow] differential oracle, the [SM_COW=0] CI
    job). *)

val cow_enabled : unit -> bool
(** Current {!set_cow} setting.  Initialized from the [SM_COW] environment
    variable at startup ([0]/[off]/[false] select the deep-copy baseline);
    defaults to on. *)

val cow_hits : Sm_obs.Metrics.counter
(** [ws.cow_hits] — cells whose snapshot pointer diverged from a base
    shared at a share point (the copy-on-first-write event; with
    persistent states the "copy" is an O(1) pointer swap, never a byte
    copy).  Counted at most once per cell per sharing window. *)

val copy_bytes : Sm_obs.Metrics.counter
(** [ws.copy_bytes] — approximate bytes deep-copied at share points by the
    {!set_cow}-off baseline ([Data.S.state_size] per copied cell).  Stays
    0 under COW: the whole point. *)

val clone_full : t -> t
(** A complete clone: states, journals and truncation offsets.  Unlike
    {!copy} (which starts a child at an empty journal), the clone carries
    the full history, so version bases recorded against the original remain
    meaningful — the substrate for transactional trial merges. *)

val clone_trimmed : t -> t
(** Like {!clone_full} with the journal truncated at the head: states are
    shared (persistent), versions are preserved, and the journal starts
    empty at the current version — O(values) regardless of history length.
    The clone answers {!journal_since} only from the cloning point onward;
    use it when past operations are not needed, e.g. for a replica's working
    view whose pending-op suffix is all that is ever read back. *)

val adopt : t -> from:t -> unit
(** Replace this workspace's bindings with [from]'s (shared, not copied):
    commit a trial {!clone_full} back.  [from] must not be used
    afterwards. *)

val merge_ops : t -> ('s, 'o) key -> ops:'o list -> base_version:int -> unit
(** Low-level single-value merge: transform [ops] — a concurrent journal
    recorded against this value's state as of [base_version] — over
    everything applied since, then journal the result (applied lazily at
    the next observation).  This is
    what {!merge_child} does per key; exposed for the distributed runtime,
    which receives child journals as decoded messages rather than whole
    workspaces.
    @raise Unbound_key / [Invalid_argument] as {!merge_child}. *)

val rebase_from : t -> parent:t -> unit
(** Make the child's bindings fresh copies of the parent's (states shared,
    journals empty) — the data half of [Sync].  The caller should then take
    a new parent {!snapshot} as the child's base. *)

val is_pristine : t -> bool
(** True when every journal is empty — the workspace holds no unmerged local
    operations.  [Clone] requires a pristine cloner so the sibling's base is
    meaningful. *)

val truncate : t -> keep:Versions.t -> unit
(** Drop journal prefixes older than [keep] (the minimum base of any live
    child, as computed by the runtime), bounding memory on long-running
    tasks.  Merging a child whose base predates the truncation point raises
    [Invalid_argument]. *)

val truncate_to_min : t -> bases:Versions.t list -> unit
(** Truncate each journal to the oldest position any of [bases] still needs;
    keys absent from every base truncate fully.  The runtime calls this after
    merges with the bases of the remaining live children. *)

val digest : t -> string
(** Order-insensitive-to-nothing: a deterministic hex digest of every bound
    value's type, name and pretty-printed state, in key order.  Two runs of
    a deterministic program must produce equal digests — the determinism
    oracle's observable. *)

val ws_uid : t -> int
(** Process-unique workspace identity (survives {!adopt}); what
    {!Sanitizer_hook} events carry as [ws_id].  Diagnostic only — not stable
    across runs. *)

(** Observation points for the determinism sanitizer ({!Sm_check.Detsan}).
    Mirrors the {!Sm_obs} gating discipline: when nothing is installed each
    site costs one load and branch.  At most one listener at a time; the
    workspace itself attaches no meaning to the events. *)
module Sanitizer_hook : sig
  type event =
    | Key_created of { key : string }
        (** {!create_key} minted a key (hazardous mid-run, see {!Detcheck}) *)
    | Updated of { ws_id : int; key : string }  (** {!update} journalled an operation *)
    | Digested of { ws_id : int }  (** {!digest} observed this workspace *)

  val install : (event -> unit) -> unit
  val uninstall : unit -> unit

  val active : unit -> bool
  (** A listener is installed (e.g. asserting hook hygiene in tests). *)
end

val equal : t -> t -> bool
(** Same keys bound, and all states equal per their [Data.S.equal_state]. *)

val pp : Format.formatter -> t -> unit
