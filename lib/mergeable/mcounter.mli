(** Mergeable integer counters: concurrent increments always sum. *)

module Data : Data.S with type state = int and type op = Sm_ot.Op_counter.op

type handle = (int, Sm_ot.Op_counter.op) Workspace.key

val key : name:string -> handle

val get : Workspace.t -> handle -> int

val add : Workspace.t -> handle -> int -> unit

val incr : Workspace.t -> handle -> unit

val decr : Workspace.t -> handle -> unit
