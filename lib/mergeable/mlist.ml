module Make (Elt : Sm_ot.Op_sig.ELT) = struct
  module Op = Sm_ot.Op_list.Make (Elt)

  module Data = struct
    include Op

    let type_name = "list"
  end

  type handle = (Elt.t list, Op.op) Workspace.key

  let key ~name = Workspace.create_key (module Data) ~name
  let get = Workspace.read
  let length ws h = List.length (get ws h)
  let nth ws h i = List.nth_opt (get ws h) i
  let append ws h x = Workspace.update ws h (Op.ins (length ws h) x)
  let insert ws h i x = Workspace.update ws h (Op.ins i x)
  let delete ws h i = Workspace.update ws h (Op.del i)
  let set ws h i x = Workspace.update ws h (Op.set i x)
end
