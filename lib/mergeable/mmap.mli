(** Mergeable dictionaries: independent keys merge freely; per-key conflicts
    resolve deterministically, later-merged child wins. *)

module Make (Key : Sm_ot.Op_sig.ORDERED_ELT) (Value : Sm_ot.Op_sig.ELT) : sig
  module Op : module type of Sm_ot.Op_map.Make (Key) (Value)

  module Data : Data.S with type state = Value.t Op.Key_map.t and type op = Op.op

  type handle = (Value.t Op.Key_map.t, Op.op) Workspace.key

  val key : name:string -> handle

  val get : Workspace.t -> handle -> Value.t Op.Key_map.t

  val find : Workspace.t -> handle -> Key.t -> Value.t option

  val bindings : Workspace.t -> handle -> (Key.t * Value.t) list

  val cardinal : Workspace.t -> handle -> int

  val put : Workspace.t -> handle -> Key.t -> Value.t -> unit

  val remove : Workspace.t -> handle -> Key.t -> unit
end
