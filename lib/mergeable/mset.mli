(** Mergeable sets: idempotent adds/removes; a concurrent add/remove of the
    same element resolves deterministically, later-merged child wins. *)

module Make (Elt : Sm_ot.Op_sig.ORDERED_ELT) : sig
  module Op : module type of Sm_ot.Op_set.Make (Elt)

  module Data : Data.S with type state = Op.Elt_set.t and type op = Op.op

  type handle = (Op.Elt_set.t, Op.op) Workspace.key

  val key : name:string -> handle

  val get : Workspace.t -> handle -> Op.Elt_set.t

  val mem : Workspace.t -> handle -> Elt.t -> bool

  val cardinal : Workspace.t -> handle -> int

  val elements : Workspace.t -> handle -> Elt.t list

  val add : Workspace.t -> handle -> Elt.t -> unit

  val remove : Workspace.t -> handle -> Elt.t -> unit
end
