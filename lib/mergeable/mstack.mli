(** Mergeable stacks (LIFO, remove-that-element pop intention — see
    {!Sm_ot.Op_stack} for the contrast with queues). *)

module Make (Elt : Sm_ot.Op_sig.ELT) : sig
  module Op : module type of Sm_ot.Op_stack.Make (Elt)

  module Data : Data.S with type state = Elt.t list and type op = Op.op

  type handle = (Elt.t list, Op.op) Workspace.key

  val key : name:string -> handle

  val get : Workspace.t -> handle -> Elt.t list
  (** Top first. *)

  val depth : Workspace.t -> handle -> int

  val push : Workspace.t -> handle -> Elt.t -> unit

  val pop : Workspace.t -> handle -> Elt.t option
  (** [None] on an empty stack — nothing is journalled in that case. *)

  val peek : Workspace.t -> handle -> Elt.t option
end
