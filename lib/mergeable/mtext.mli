(** Mergeable text buffers (collaborative-editing strings).

    The document state is {!Sm_ot.Op_text.state} — flat string or chunked
    rope depending on the [SM_ROPE] switch; this module's string-facing API
    is representation-blind. *)

module Data : Data.S with type state = Sm_ot.Op_text.state and type op = Sm_ot.Op_text.op

type handle = (Sm_ot.Op_text.state, Sm_ot.Op_text.op) Workspace.key

val key : name:string -> handle

val init : Workspace.t -> handle -> string -> unit
(** Bind the document with an initial value, built in the currently
    selected representation. *)

val state : Workspace.t -> handle -> Sm_ot.Op_text.state
(** The underlying state — for representation-aware assertions (sharing,
    chunk structure); ordinary readers want {!get}. *)

val get : Workspace.t -> handle -> string
(** The document bytes (flattens a multi-chunk rope). *)

val length : Workspace.t -> handle -> int
(** O(1) in both representations. *)

val insert : Workspace.t -> handle -> int -> string -> unit
(** Inserting the empty string is a no-op and journals nothing. *)

val delete : Workspace.t -> handle -> pos:int -> len:int -> unit
(** Deleting zero bytes is a no-op and journals nothing. *)

val append : Workspace.t -> handle -> string -> unit
