(** Mergeable text buffers (collaborative-editing strings). *)

module Data : Data.S with type state = string and type op = Sm_ot.Op_text.op

type handle = (string, Sm_ot.Op_text.op) Workspace.key

val key : name:string -> handle

val get : Workspace.t -> handle -> string

val length : Workspace.t -> handle -> int

val insert : Workspace.t -> handle -> int -> string -> unit
(** Inserting the empty string is a no-op and journals nothing. *)

val delete : Workspace.t -> handle -> pos:int -> len:int -> unit
(** Deleting zero bytes is a no-op and journals nothing. *)

val append : Workspace.t -> handle -> string -> unit
