(** Mergeable ordered trees (labelled forests addressed by child-index
    paths). *)

module Make (Label : Sm_ot.Op_sig.ELT) : sig
  module Op : module type of Sm_ot.Op_tree.Make (Label)

  module Data : Data.S with type state = Op.state and type op = Op.op

  type handle = (Op.state, Op.op) Workspace.key

  val key : name:string -> handle

  val get : Workspace.t -> handle -> Op.state

  val find : Workspace.t -> handle -> Op.path -> Op.node option

  val size : Workspace.t -> handle -> int

  val insert : Workspace.t -> handle -> Op.path -> Op.node -> unit

  val delete : Workspace.t -> handle -> Op.path -> unit

  val relabel : Workspace.t -> handle -> Op.path -> Label.t -> unit
end
