module Make (Label : Sm_ot.Op_sig.ELT) = struct
  module Op = Sm_ot.Op_tree.Make (Label)

  module Data = struct
    include Op

    let type_name = "tree"
  end

  type handle = (Op.state, Op.op) Workspace.key

  let key ~name = Workspace.create_key (module Data) ~name
  let get = Workspace.read
  let find ws h p = Op.find (get ws h) p
  let size ws h = Op.size (get ws h)
  let insert ws h p n = Workspace.update ws h (Op.insert p n)
  let delete ws h p = Workspace.update ws h (Op.delete p)
  let relabel ws h p l = Workspace.update ws h (Op.relabel p l)
end
