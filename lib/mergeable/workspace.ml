module Imap = Map.Make (Int)

exception Unbound_key of string
exception Already_bound of string

(* Sanitizer hooks, same discipline as Sm_obs gating: a single load + branch
   per site when nothing is installed.  The determinism sanitizer
   (Sm_check.Detsan) listens here to see key minting, updates and digests
   without the workspace depending on anything above it. *)
module Sanitizer_hook = struct
  type event =
    | Key_created of { key : string }
    | Updated of { ws_id : int; key : string }
    | Digested of { ws_id : int }

  let hook : (event -> unit) option ref = ref None
  let install f = hook := Some f
  let uninstall () = hook := None
  let emit ev = match !hook with None -> () | Some f -> f ev
  let active () = !hook <> None
end

(* Copy-on-write accounting, gated exactly like Control's transform_calls:
   one load + branch while Sm_obs metrics are disabled.  [ws.cow_hits]
   counts cells whose state pointer diverged from a base snapshot shared at
   spawn/clone/rebase (the "copy on first write" event — with persistent
   states the "copy" is the O(1) pointer swap the apply performs, never a
   byte copy); [ws.copy_bytes] counts the bytes the deep-copy baseline
   ({!set_cow} off) materializes at share points, and stays 0 under COW. *)
let cow_hits = Sm_obs.Metrics.counter "ws.cow_hits"
let copy_bytes = Sm_obs.Metrics.counter "ws.copy_bytes"

(* A cell holds one mergeable value as an immutable snapshot plus the journal
   of operations applied since the cell was created or last rebased.
   [offset] counts journal entries dropped by [truncate]; the cell's version
   is [offset + length journal].  [state] materializes the value only up to
   [applied] (an absolute version, [offset <= applied <= version]): merges
   append transformed journal entries without touching [state], and the
   suffix [applied .. version) is folded in lazily by [force] at the next
   observation (read, update, digest, share point).  [shared] marks a state
   pointer that some other workspace aliases as its base snapshot — cleared,
   and counted as a [ws.cow_hits], the first time this cell's state moves
   past it. *)
type ('s, 'o) cell =
  { mutable state : 's
  ; mutable applied : int
  ; mutable journal : 'o Sm_util.Vec.t
  ; mutable offset : int
  ; mutable shared : bool
  }

type boxed = ..

type ('s, 'o) key =
  { id : int
  ; name : string
  ; data : (module Data.S with type state = 's and type op = 'o)
  ; inj : ('s, 'o) cell -> boxed
  ; prj : boxed -> ('s, 'o) cell option
  }

type packed = P : ('s, 'o) key * ('s, 'o) cell -> packed

type t =
  { uid : int  (** process-unique, for sanitizer provenance only *)
  ; mutable cells : packed Imap.t
  }

let next_key_id = Atomic.make 0
let next_ws_uid = Atomic.make 0

let create_key (type s o) (module D : Data.S with type state = s and type op = o) ~name :
    (s, o) key =
  let module M = struct
    type boxed += B of (s, o) cell
  end in
  if Sanitizer_hook.active () then Sanitizer_hook.emit (Sanitizer_hook.Key_created { key = name });
  { id = Atomic.fetch_and_add next_key_id 1
  ; name
  ; data = (module D)
  ; inj = (fun c -> M.B c)
  ; prj = (function M.B c -> Some c | _ -> None)
  }

let key_name k = k.name

module Versions = struct
  type t = int Imap.t

  let empty = Imap.empty
  let find id (t : t) = Option.value ~default:0 (Imap.find_opt id t)

  let pp ppf (t : t) =
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
         (fun ppf (id, v) -> Format.fprintf ppf "%d:%d" id v))
      (Imap.bindings t)
end

(* Journal compaction before transform.  Default on: compacted journals are
   apply-equivalent to the raw ones on every state (the lib/check
   compaction-equivalence property verifies this per op module), so the
   merged states and digests are unchanged while the transform cross gets
   shorter sequences.  Runtime-switchable so equivalence can be asserted
   end-to-end by diffing digests with the flag off. *)
let compaction = Atomic.make true
let set_compaction on = Atomic.set compaction on
let compaction_enabled () = Atomic.get compaction

(* Copy-on-write sharing at spawn/clone/rebase.  Default on: children alias
   the parent's (persistent) state snapshots, so sharing a workspace is
   O(cells) regardless of state size.  Off is the paper's literal model —
   every share point materializes a structural deep copy per cell
   ([Data.S.copy_state], metered in [ws.copy_bytes]) — kept as a switchable
   baseline so the representations stay differentially comparable: states,
   journals and digests must be identical either way.  [SM_COW=0] in the
   environment selects the baseline for a whole process (the legacy-mode CI
   job). *)
let cow =
  Atomic.make
    (match Sys.getenv_opt "SM_COW" with Some ("0" | "off" | "false") -> false | _ -> true)

let set_cow on = Atomic.set cow on
let cow_enabled () = Atomic.get cow

let create () = { uid = Atomic.fetch_and_add next_ws_uid 1; cells = Imap.empty }

let ws_uid t = t.uid

let find_cell (type s o) (t : t) (k : (s, o) key) : (s, o) cell option =
  match Imap.find_opt k.id t.cells with
  | None -> None
  | Some (P (k', c)) -> k.prj (k'.inj c)

let get_cell t k =
  match find_cell t k with
  | Some c -> c
  | None -> raise (Unbound_key k.name)

let mem t k = Imap.mem k.id t.cells

let cell_count t = Imap.cardinal t.cells

let init t k state =
  if mem t k then raise (Already_bound k.name);
  let cell =
    { state; applied = 0; journal = Sm_util.Vec.create (); offset = 0; shared = false }
  in
  t.cells <- Imap.add k.id (P (k, cell)) t.cells

let cell_version c = c.offset + Sm_util.Vec.length c.journal

(* The cell's state pointer is about to move past a snapshot someone may
   alias: count the copy-on-first-write event once per sharing window. *)
let privatize c =
  if c.shared then begin
    Sm_obs.Metrics.incr cow_hits;
    c.shared <- false
  end

(* Materialize the value: fold the journal suffix [applied .. version) into
   [state].  Persistent applies never mutate the old snapshot, so aliases
   taken at share points stay valid — this is where a lazily merged journal
   finally becomes a state, and the only place a reader pays for it. *)
let force (type s o) (k : (s, o) key) (c : (s, o) cell) =
  let version = cell_version c in
  if c.applied < version then begin
    let module D = (val k.data) in
    privatize c;
    let rec go i state =
      if i >= Sm_util.Vec.length c.journal then state
      else go (i + 1) (D.apply state (Sm_util.Vec.get c.journal i))
    in
    c.state <- go (c.applied - c.offset) c.state;
    c.applied <- version
  end

let forced_state k c =
  force k c;
  c.state

let read t k = forced_state k (get_cell t k)

let update (type s o) t (k : (s, o) key) (op : o) =
  let module D = (val k.data) in
  let cell = get_cell t k in
  force k cell;
  privatize cell;
  cell.state <- D.apply cell.state op;
  Sm_util.Vec.push cell.journal op;
  cell.applied <- cell.applied + 1;
  if Sanitizer_hook.active () then
    Sanitizer_hook.emit (Sanitizer_hook.Updated { ws_id = t.uid; key = k.name })

(* Like [update], but the journal is trimmed at the new head instead of
   retaining the operation: the version still advances, and [journal_since]
   afterwards answers only from the new head.  For replicas that apply
   remote operations they will never re-ship — retaining them would make
   every replica's memory grow with the full edit history. *)
let update_trimming (type s o) t (k : (s, o) key) (op : o) =
  let module D = (val k.data) in
  let cell = get_cell t k in
  force k cell;
  privatize cell;
  cell.state <- D.apply cell.state op;
  cell.offset <- cell_version cell + 1;
  Sm_util.Vec.clear cell.journal;
  cell.applied <- cell.offset;
  if Sanitizer_hook.active () then
    Sanitizer_hook.emit (Sanitizer_hook.Updated { ws_id = t.uid; key = k.name })

let version_of t k = cell_version (get_cell t k)

let key_names t = List.map (fun (_, P (k, _)) -> k.name) (Imap.bindings t.cells)

let version_in versions k = Versions.find k.id versions
let journal t k = Sm_util.Vec.to_list (get_cell t k).journal

let journal_since t k ~version =
  let c = get_cell t k in
  if version < c.offset then
    invalid_arg
      (Printf.sprintf "Workspace.journal_since: journal of %S truncated past version %d (< %d)"
         k.name version c.offset)
  else if version >= cell_version c then []
  else Sm_util.Vec.slice c.journal ~from:(version - c.offset)

let snapshot t = Imap.map (fun (P (_, c)) -> cell_version c) t.cells

let op_count t =
  Imap.fold (fun _ (P (_, c)) acc -> acc + Sm_util.Vec.length c.journal) t.cells 0

(* The state a share point hands out: materialized, and either aliased
   (COW, the default — mark both sides shared so the first write on either
   is visible as a cow hit) or deep-copied per the paper's baseline, with
   the copied bytes metered. *)
let share_state (type s o) (k : (s, o) key) (c : (s, o) cell) : s =
  let module D = (val k.data) in
  force k c;
  if Atomic.get cow then begin
    c.shared <- true;
    c.state
  end
  else begin
    Sm_obs.Metrics.add copy_bytes (D.state_size c.state);
    D.copy_state c.state
  end

let fresh_copy (P (k, c)) =
  P
    ( k
    , { state = share_state k c
      ; applied = 0
      ; journal = Sm_util.Vec.create ()
      ; offset = 0
      ; shared = Atomic.get cow
      } )

let copy t = { uid = Atomic.fetch_and_add next_ws_uid 1; cells = Imap.map fresh_copy t.cells }

let clone_full t =
  { uid = Atomic.fetch_and_add next_ws_uid 1
  ; cells =
      Imap.map
        (fun (P (k, c)) ->
          (* The journal suffix travels with the clone, so the unapplied tail
             needs no materialization: only the [applied] snapshot is shared
             (or deep-copied under the baseline). *)
          let state =
            if Atomic.get cow then begin
              c.shared <- true;
              c.state
            end
            else begin
              let module D = (val k.data) in
              Sm_obs.Metrics.add copy_bytes (D.state_size c.state);
              D.copy_state c.state
            end
          in
          P
            ( k
            , { state
              ; applied = c.applied
              ; journal = Sm_util.Vec.copy c.journal
              ; offset = c.offset
              ; shared = Atomic.get cow
              } ))
        t.cells
  }

let clone_trimmed t =
  { uid = Atomic.fetch_and_add next_ws_uid 1
  ; cells =
      Imap.map
        (fun (P (k, c)) ->
          let version = cell_version c in
          P
            ( k
            , { state = share_state k c
              ; applied = version
              ; journal = Sm_util.Vec.create ()
              ; offset = version
              ; shared = Atomic.get cow
              } ))
        t.cells
  }

let adopt t ~from = t.cells <- from.cells

let integrate (type s o) (k : (s, o) key) ~(parent : (s, o) cell) ~(ops : o list) ~base_version =
  let module D = (val k.data) in
  let module C = Sm_ot.Control.Make (D) in
  if base_version < parent.offset then
    invalid_arg
      (Printf.sprintf "Workspace.merge_child: journal of %S truncated past child base (%d < %d)"
         k.name base_version parent.offset);
  let parent_since = Sm_util.Vec.slice parent.journal ~from:(base_version - parent.offset) in
  let ops = if Atomic.get compaction then C.compact ops else ops in
  let ops' = C.transform_seq ops ~against:parent_since ~tie:Sm_ot.Side.serialization in
  (* Lazy materialization: the merged operations land in the journal only.
     The parent's state catches up in [force] at its next observation — so a
     task that merges children and is itself merged away (the interior of a
     deep spawn tree) never pays an apply for the ops flowing through it. *)
  Sm_util.Vec.append_list parent.journal ops'

let merge_cell k ~parent ~child ~base_version =
  integrate k ~parent ~ops:(Sm_util.Vec.to_list child.journal) ~base_version

let merge_ops t k ~ops ~base_version = integrate k ~parent:(get_cell t k) ~ops ~base_version

let merge_child ~parent ~child ~base =
  (* Key-id order = creation order: deterministic merge of multi-key
     workspaces. *)
  Imap.iter
    (fun id (P (k, child_cell)) ->
      match Imap.find_opt id parent.cells with
      | Some (P (_, _)) ->
        let parent_cell = get_cell parent k in
        if Imap.mem id base then
          merge_cell k ~parent:parent_cell ~child:child_cell ~base_version:(Versions.find id base)
        else
          (* The child initialized a key the parent also has: either the
             parent initialized it independently (conflict) or gained it from
             another child that initialized it (same conflict, one hop
             later). *)
          raise (Already_bound k.name)
      | None ->
        (* Key initialized inside the child: install a detached cell (the
           child may keep mutating its own cell until it terminates; the
           journal is copied, and the snapshot shared or deep-copied per the
           active representation — persistent applies keep the alias safe). *)
        let state =
          if Atomic.get cow then begin
            child_cell.shared <- true;
            child_cell.state
          end
          else begin
            let module D = (val k.data) in
            Sm_obs.Metrics.add copy_bytes (D.state_size child_cell.state);
            D.copy_state child_cell.state
          end
        in
        let detached =
          { state
          ; applied = child_cell.applied
          ; journal = Sm_util.Vec.copy child_cell.journal
          ; offset = child_cell.offset
          ; shared = Atomic.get cow
          }
        in
        parent.cells <- Imap.add id (P (k, detached)) parent.cells)
    child.cells

let rebase_from t ~parent = t.cells <- Imap.map fresh_copy parent.cells

let is_pristine t =
  Imap.for_all (fun _ (P (_, c)) -> Sm_util.Vec.length c.journal = 0) t.cells

let truncate t ~keep =
  Imap.iter
    (fun id (P (_, c)) ->
      let keep_from = Versions.find id keep in
      (* Never drop past [applied]: the unmaterialized suffix is still needed
         to force the state.  Those entries fall to a later truncation, once
         an observation has folded them in. *)
      let drop =
        min (min (keep_from - c.offset) (c.applied - c.offset)) (Sm_util.Vec.length c.journal)
      in
      if drop > 0 then begin
        c.journal <- Sm_util.Vec.of_list (Sm_util.Vec.slice c.journal ~from:drop);
        c.offset <- c.offset + drop
      end)
    t.cells

let truncate_to_min t ~bases =
  let keep =
    Imap.mapi
      (fun id (P (_, c)) ->
        (* The oldest version any child's base still refers to; children whose
           base lacks the key never merge it, so they impose no floor. *)
        List.fold_left
          (fun acc base -> match Imap.find_opt id base with None -> acc | Some v -> min acc v)
          (cell_version c) bases)
      t.cells
  in
  truncate t ~keep

let digest t =
  if Sanitizer_hook.active () then Sanitizer_hook.emit (Sanitizer_hook.Digested { ws_id = t.uid });
  let h =
    Imap.fold
      (fun _id (P (k, c)) acc ->
        let module D = (val k.data) in
        (* no [id] here: the creation id is a process-global mint counter, so
           including it would make digests of same-named keysets (clean vs
           mutated — the fuzzer's differential oracle) incomparable *)
        let cell_repr =
          Format.asprintf "%s:%s:%a" D.type_name k.name D.pp_state (forced_state k c)
        in
        Sm_util.Fnv.combine acc (Sm_util.Fnv.hash cell_repr))
      t.cells (Sm_util.Fnv.hash "workspace")
  in
  Sm_util.Fnv.to_hex h

let equal a b =
  Imap.cardinal a.cells = Imap.cardinal b.cells
  && Imap.for_all
       (fun id (P (k, ca)) ->
         match Imap.find_opt id b.cells with
         | None -> false
         | Some (P (_, _)) -> (
           match find_cell b k with
           | None -> false
           | Some cb ->
             let module D = (val k.data) in
             D.equal_state (forced_state k ca) (forced_state k cb)))
       a.cells

let pp ppf t =
  let pp_cell ppf (_, P (k, c)) =
    let module D = (val k.data) in
    Format.fprintf ppf "%s = %a" k.name D.pp_state (forced_state k c)
  in
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_cell)
    (Imap.bindings t.cells)
