(** The interface a data structure must implement to be mergeable.

    This is the paper's extension point: "programmers can use an interface to
    implement new mergeable data structures that work with our system".  A
    mergeable type is an OT operation module ({!Sm_ot.Op_sig.S}: state,
    operations, [apply], [transform]) plus a display name.  Everything else —
    journaling, version tracking, copying, merging — is generic and provided
    by {!Workspace}. *)

module type S = sig
  include Sm_ot.Op_sig.S

  val type_name : string
  (** Shown in diagnostics and mixed into workspace digests, so two values
      of different mergeable types never digest equal by accident. *)
end
