(** Mergeable FIFO queues — the paper's [MergeableQueue] (Listing 4).

    {!pop} consumes a slot {e in this task's view} and journals the
    consumption only when it actually happened, so merged histories remove
    exactly as many elements as were really popped (see {!Sm_ot.Op_queue}
    for the intention semantics).  Designed for single-consumer queues: in
    the network simulation each host pops only its own queue while any host
    may push to it. *)

module Make (Elt : Sm_ot.Op_sig.ELT) : sig
  module Op : module type of Sm_ot.Op_queue.Make (Elt)

  module Data : Data.S with type state = Elt.t list and type op = Op.op

  type handle = (Elt.t list, Op.op) Workspace.key

  val key : name:string -> handle

  val get : Workspace.t -> handle -> Elt.t list
  (** Front first. *)

  val length : Workspace.t -> handle -> int

  val is_empty : Workspace.t -> handle -> bool

  val push : Workspace.t -> handle -> Elt.t -> unit

  val pop : Workspace.t -> handle -> Elt.t option
  (** [None] on an empty queue — nothing is journalled in that case. *)

  val peek : Workspace.t -> handle -> Elt.t option
end
