(** Mergeable single-value registers: conflicting concurrent assignments
    resolve deterministically, later-merged child wins. *)

module Make (V : Sm_ot.Op_sig.ELT) : sig
  module Op : module type of Sm_ot.Op_register.Make (V)

  module Data : Data.S with type state = V.t and type op = Op.op

  type handle = (V.t, Op.op) Workspace.key

  val key : name:string -> handle

  val get : Workspace.t -> handle -> V.t

  val set : Workspace.t -> handle -> V.t -> unit
end
