module Make (Key : Sm_ot.Op_sig.ORDERED_ELT) (Value : Sm_ot.Op_sig.ELT) = struct
  module Op = Sm_ot.Op_map.Make (Key) (Value)

  module Data = struct
    include Op

    let type_name = "map"
  end

  type handle = (Value.t Op.Key_map.t, Op.op) Workspace.key

  let key ~name = Workspace.create_key (module Data) ~name
  let get = Workspace.read
  let find ws h k = Op.Key_map.find_opt k (get ws h)
  let bindings ws h = Op.Key_map.bindings (get ws h)
  let cardinal ws h = Op.Key_map.cardinal (get ws h)
  let put ws h k v = Workspace.update ws h (Op.put k v)
  let remove ws h k = Workspace.update ws h (Op.remove k)
end
