module Ws = Sm_mergeable.Workspace
module Side = Sm_ot.Side

module Make (E : Enum.S) = struct
  module C = Sm_ot.Control.Make (E)
  module Conv = Sm_ot.Convergence.Make (E)

  (* The workspace-level properties need a Data.S; the synthetic type_name
     keeps check keys from ever digest-colliding with application keys. *)
  module D = struct
    include E

    let type_name = "check:" ^ E.name
  end

  type cex =
    { property : Report.property
    ; state : E.state
    ; applied : E.op list
    ; left : E.op list
    ; right : E.op list
    ; nested : E.op list
    ; a_wins : bool
    ; tie : Side.policy
    ; exn : string option
    ; shrink_steps : int
    }

  (* --- property evaluators (true = holds; exceptions propagate) ----------- *)

  let fresh_key () = Ws.create_key (module D) ~name:D.type_name

  let ws_of key state =
    let ws = Ws.create () in
    Ws.init ws key state;
    ws

  let with_compaction on f =
    let saved = Ws.compaction_enabled () in
    Ws.set_compaction on;
    Fun.protect ~finally:(fun () -> Ws.set_compaction saved) f

  (* Two concurrent single-log children merged into a parent that applied its
     own ops after spawning them — through the real Workspace path. *)
  let merge_order_result key state ~applied ~cx ~cy =
    let parent = ws_of key state in
    let base = Ws.snapshot parent in
    let child ops =
      let c = Ws.copy parent in
      List.iter (Ws.update c key) ops;
      c
    in
    let wx = child cx and wy = child cy in
    List.iter (Ws.update parent key) applied;
    Ws.merge_child ~parent ~child:wx ~base;
    Ws.merge_child ~parent ~child:wy ~base;
    (Ws.read parent key, Ws.digest parent)

  (* Merge_order and Merge_nested compare the workspace against the *pure*
     control algorithm, so they run with compaction forced off; the Compact
     property separately pins compaction-on to compaction-off.  Together:
     on = off = control. *)
  let merge_order_holds key state ~applied ~cx ~cy =
    with_compaction false @@ fun () ->
    let s1, d1 = merge_order_result key state ~applied ~cx ~cy in
    let s2, d2 = merge_order_result key state ~applied ~cx ~cy in
    let expect = Conv.merged_state ~state ~applied ~children:[ cx; cy ] in
    E.equal_state s1 expect && E.equal_state s2 expect && String.equal d1 d2

  (* Three-level tree: child applies [c1], spawns a grandchild, applies [c2]
     while the grandchild applies [g], merges the grandchild, then merges
     into a parent that meanwhile applied [p].  Must equal the flattened
     control-algorithm merge — this is what pins Workspace's version/base
     bookkeeping to the paper's equations. *)
  let merge_nested_result key state ~p ~c1 ~c2 ~g =
    let parent = ws_of key state in
    let base_c = Ws.snapshot parent in
    let child = Ws.copy parent in
    List.iter (Ws.update child key) c1;
    let base_g = Ws.snapshot child in
    let grand = Ws.copy child in
    List.iter (Ws.update child key) c2;
    List.iter (Ws.update grand key) g;
    Ws.merge_child ~parent:child ~child:grand ~base:base_g;
    List.iter (Ws.update parent key) p;
    Ws.merge_child ~parent ~child ~base:base_c;
    Ws.read parent key

  let merge_nested_holds key state ~p ~c1 ~c2 ~g =
    with_compaction false @@ fun () ->
    let got = merge_nested_result key state ~p ~c1 ~c2 ~g in
    let child_log = c1 @ C.merge ~applied:c2 ~children:[ g ] ~tie:Side.serialization in
    let expect = Conv.merged_state ~state ~applied:p ~children:[ child_log ] in
    E.equal_state got expect

  (* --- compaction equivalence ---------------------------------------------- *)

  let compact_equiv state ops =
    E.equal_state (C.apply_seq state (E.compact ops)) (C.apply_seq state ops)

  (* Every tie policy a caller could pass: [commutes] promises identity
     transforms regardless of how ties break, because the control fast path
     skips the transform without knowing the policy. *)
  let all_ties =
    [ Side.serialization
    ; Side.flip Side.serialization
    ; Side.uniform Side.Incoming
    ; Side.uniform Side.Applied
    ]

  let commutes_contract a b =
    (not (E.commutes a b))
    || List.for_all
         (fun tie -> E.transform a ~against:b ~tie = [ a ] && E.transform b ~against:a ~tie = [ b ])
         all_ties

  (* The end-to-end claim: the same merge, journals compacted vs raw, lands
     on the same state *and* the same digest.  The same key serves both runs
     so the digests are comparable. *)
  let merge_flag_equiv key state ~applied ~cx ~cy =
    let s_on, d_on = with_compaction true (fun () -> merge_order_result key state ~applied ~cx ~cy) in
    let s_off, d_off =
      with_compaction false (fun () -> merge_order_result key state ~applied ~cx ~cy)
    in
    E.equal_state s_on s_off && String.equal d_on d_off

  (* Scenario = [applied; left; right; nested]: the shape the shrinker
     rewrites.  Evaluation of a shape a property does not use (e.g. TP1 with
     0 or 2 ops on a side) returns "holds", which makes the shrinker reject
     that candidate. *)
  let holds_scenario ~property ~a_wins ~tie ~state applied left right nested =
    match (property : Report.property) with
    | Tp1 -> (
      match (left, right) with
      | [ a ], [ b ] when applied = [] && nested = [] -> Conv.tp1 ~state ~a ~b ~a_wins
      | _ -> true)
    | Cross ->
      if applied <> [] || nested <> [] then true
      else Conv.seqs_converge ~state ~left ~right ~tie
    | Merge_order ->
      if nested <> [] then true
      else merge_order_holds (fresh_key ()) state ~applied ~cx:left ~cy:right
    | Merge_nested -> merge_nested_holds (fresh_key ()) state ~p:applied ~c1:left ~c2:right ~g:nested
    | Compact ->
      if nested <> [] then true
      else
        compact_equiv state applied && compact_equiv state left && compact_equiv state right
        && (match (applied, left, right) with
           | [], [ a ], [ b ] -> commutes_contract a b
           | _ -> true)
        && merge_flag_equiv (fresh_key ()) state ~applied ~cx:left ~cy:right

  (* --- shrinking ----------------------------------------------------------- *)

  let scenario_of (cex : cex) = [ cex.applied; cex.left; cex.right; cex.nested ]

  let with_scenario (cex : cex) = function
    | [ applied; left; right; nested ] -> { cex with applied; left; right; nested }
    | _ -> cex

  (* Does this scenario still exhibit the original violation?  For a logical
     violation: evaluates to false (a raise means the candidate is invalid,
     not smaller).  For a totality violation: raises the *same* exception —
     matching on the rendered exception keeps the shrinker from wandering to
     scenarios that raise for boring out-of-range reasons. *)
  let still_fails (cex : cex) scenario =
    match scenario with
    | [ applied; left; right; nested ] -> (
      let eval () =
        holds_scenario ~property:cex.property ~a_wins:cex.a_wins ~tie:cex.tie ~state:cex.state
          applied left right nested
      in
      match cex.exn with
      | None -> ( match eval () with ok -> not ok | exception _ -> false)
      | Some original -> (
        match eval () with
        | (_ : bool) -> false
        | exception e -> String.equal (Printexc.to_string e) original))
    | _ -> false

  let minimize (cex : cex) =
    let scenario, steps =
      Shrink.minimize ~fails:(still_fails cex) ~shrink_elt:E.shrink_op (scenario_of cex)
    in
    { (with_scenario cex scenario) with shrink_steps = steps }

  let holds (cex : cex) = not (still_fails cex (scenario_of cex))

  (* --- rendering ----------------------------------------------------------- *)

  let render_op op = Format.asprintf "%a" E.pp_op op
  let render_state s = Format.asprintf "%a" E.pp_state s

  let detail_of (cex : cex) =
    match cex.exn with
    | Some _ -> ""
    | None -> (
      try
        match cex.property with
        | Tp1 -> (
          match (cex.left, cex.right) with
          | [ a ], [ b ] ->
            let tie_a = Side.uniform (if cex.a_wins then Side.Incoming else Side.Applied) in
            let via_b = C.apply_seq (E.apply cex.state b) (E.transform a ~against:b ~tie:tie_a) in
            let via_a =
              C.apply_seq (E.apply cex.state a) (E.transform b ~against:a ~tie:(Side.flip tie_a))
            in
            Format.asprintf "b-then-a' = %s but a-then-b' = %s" (render_state via_b)
              (render_state via_a)
          | _ -> "")
        | Cross ->
          let left', right' = C.cross ~incoming:cex.left ~applied:cex.right ~tie:cex.tie in
          let via_right = C.apply_seq (C.apply_seq cex.state cex.right) left' in
          let via_left = C.apply_seq (C.apply_seq cex.state cex.left) right' in
          Format.asprintf "right-then-left' = %s but left-then-right' = %s"
            (render_state via_right) (render_state via_left)
        | Merge_order ->
          let got, _ =
            with_compaction false (fun () ->
                merge_order_result (fresh_key ()) cex.state ~applied:cex.applied ~cx:cex.left
                  ~cy:cex.right)
          in
          let expect =
            Conv.merged_state ~state:cex.state ~applied:cex.applied
              ~children:[ cex.left; cex.right ]
          in
          Format.asprintf "workspace merged to %s but control algorithm gives %s"
            (render_state got) (render_state expect)
        | Merge_nested ->
          let got =
            with_compaction false (fun () ->
                merge_nested_result (fresh_key ()) cex.state ~p:cex.applied ~c1:cex.left
                  ~c2:cex.right ~g:cex.nested)
          in
          let child_log =
            cex.left @ C.merge ~applied:cex.right ~children:[ cex.nested ] ~tie:Side.serialization
          in
          let expect =
            Conv.merged_state ~state:cex.state ~applied:cex.applied ~children:[ child_log ]
          in
          Format.asprintf "workspace merged to %s but flattened merge gives %s" (render_state got)
            (render_state expect)
        | Compact -> (
          let seq_violation name ops =
            if compact_equiv cex.state ops then None
            else
              Some
                (Format.asprintf "%s compacts to [%s] which applies to %s, but raw applies to %s"
                   name
                   (String.concat "; " (List.map render_op (E.compact ops)))
                   (render_state (C.apply_seq cex.state (E.compact ops)))
                   (render_state (C.apply_seq cex.state ops)))
          in
          match
            List.find_map
              (fun (n, ops) -> seq_violation n ops)
              [ ("applied", cex.applied); ("left", cex.left); ("right", cex.right) ]
          with
          | Some d -> d
          | None -> (
            match (cex.applied, cex.left, cex.right) with
            | [], [ a ], [ b ] when not (commutes_contract a b) ->
              "commutes promised identity transforms in both directions, but transform rewrites \
               the pair under some tie policy"
            | _ ->
              let key = fresh_key () in
              let run on =
                with_compaction on (fun () ->
                    merge_order_result key cex.state ~applied:cex.applied ~cx:cex.left
                      ~cy:cex.right)
              in
              let s_on, d_on = run true and s_off, d_off = run false in
              Format.asprintf "compacted merge gives %s (digest %s) but raw merge gives %s (digest %s)"
                (render_state s_on) d_on (render_state s_off) d_off))
      with _ -> "")

  let render (cex : cex) : Report.counterexample =
    let seq = List.map render_op in
    { property = cex.property
    ; state = render_state cex.state
    ; applied = seq cex.applied
    ; left = seq cex.left
    ; right = seq cex.right
    ; nested = seq cex.nested
    ; selector =
        (match cex.property with
        | Tp1 -> Printf.sprintf "a_wins=%b" cex.a_wins
        | Cross -> Format.asprintf "tie=%a" Side.pp_policy cex.tie
        | Merge_order | Merge_nested -> "tie=serialization (the runtime's merge policy)"
        | Compact -> "compaction on vs off (merge tie=serialization; commutes under every tie)")
    ; exn = cex.exn
    ; ops_total =
        List.length cex.applied + List.length cex.left + List.length cex.right
        + List.length cex.nested
    ; shrink_steps = cex.shrink_steps
    ; detail = detail_of cex
    }

  (* --- enumeration driver --------------------------------------------------- *)

  exception Counterexample of cex

  let serialization_ties = [ Side.serialization; Side.flip Side.serialization ]

  let check ?(skip = []) ~depth () =
    let counts = Report.zero_counts () in
    let states = E.states ~depth in
    let want p = not (List.mem (p : Report.property) skip) in
    let case ~property ?(applied = []) ~left ~right ?(nested = []) ?(a_wins = true)
        ?(tie = Side.serialization) ~state bump =
      let cex exn =
        { property; state; applied; left; right; nested; a_wins; tie; exn; shrink_steps = 0 }
      in
      match holds_scenario ~property ~a_wins ~tie ~state applied left right nested with
      | true -> bump ()
      | false -> raise (Counterexample (cex None))
      | exception e -> raise (Counterexample (cex (Some (Printexc.to_string e))))
    in
    try
      (* TP1: every op pair on every state, both tie winners. *)
      if want Tp1 then
      List.iter
        (fun state ->
          let ops = E.ops state in
          List.iter
            (fun a ->
              List.iter
                (fun b ->
                  List.iter
                    (fun a_wins ->
                      case ~property:Tp1 ~state ~left:[ a ] ~right:[ b ] ~a_wins (fun () ->
                          counts.tp1 <- counts.tp1 + 1))
                    [ true; false ])
                ops)
            ops)
        states;
      (* Cross-convergence: 1-op against 1- and 2-op concurrent sequences
         through the control algorithm, under both serialization ties. *)
      if want Cross then
      List.iter
        (fun state ->
          let ops = E.ops state in
          let rights =
            List.map (fun b -> [ b ]) ops
            @ List.concat_map
                (fun b ->
                  let mid = E.apply state b in
                  List.map (fun b2 -> [ b; b2 ]) (E.ops mid))
                ops
          in
          List.iter
            (fun a ->
              List.iter
                (fun right ->
                  List.iter
                    (fun tie ->
                      case ~property:Cross ~state ~left:[ a ] ~right ~tie (fun () ->
                          counts.cross <- counts.cross + 1))
                    serialization_ties)
                rights)
            ops)
        states;
      (* Merge serialization through the Workspace: child order, agreement
         with the pure control algorithm, digest determinism.  The parent
         applies its own concurrent op only at depth >= 2 (cubic). *)
      if want Merge_order then
      List.iter
        (fun state ->
          let ops = E.ops state in
          let applieds =
            [] :: (if depth >= 2 then List.map (fun p -> [ p ]) ops else [])
          in
          List.iter
            (fun applied ->
              List.iter
                (fun x ->
                  List.iter
                    (fun y ->
                      case ~property:Merge_order ~state ~applied ~left:[ x ] ~right:[ y ]
                        (fun () -> counts.merge_order <- counts.merge_order + 1))
                    ops)
                ops)
            applieds)
        states;
      (* Nested merges on the largest enumerated state: child + grandchild
         logs against the flattened control merge. *)
      (match (if want Merge_nested then List.rev states else []) with
      | [] -> ()
      | rep :: _ ->
        let ops = E.ops rep in
        let p_choices = [] :: (match ops with [] -> [] | p :: _ -> [ [ p ] ]) in
        List.iter
          (fun p ->
            List.iter
              (fun x ->
                let mid = E.apply rep x in
                let mops = E.ops mid in
                let c2s = [] :: List.map (fun w -> [ w ]) mops in
                List.iter
                  (fun c2 ->
                    List.iter
                      (fun g ->
                        case ~property:Merge_nested ~state:rep ~applied:p ~left:[ x ] ~right:c2
                          ~nested:[ g ] (fun () ->
                            counts.merge_nested <- counts.merge_nested + 1))
                      mops)
                  c2s)
              ops)
          p_choices);
      (* Compaction equivalence.  Enumerated last so the earlier properties
         pin their own counterexamples first (the mutation tests in
         test_check rely on that order).  Singleton pairs exercise the
         commutes contract; 2-op chains (against a sibling and, at depth >= 2,
         a concurrent parent op) and 3-op chains exercise the actual journal
         rewrites, through the real Workspace path with the flag on and
         off. *)
      if want Compact then
        List.iter
          (fun state ->
            let ops = E.ops state in
            List.iter
              (fun a ->
                List.iter
                  (fun b ->
                    case ~property:Compact ~state ~left:[ a ] ~right:[ b ] (fun () ->
                        counts.compact <- counts.compact + 1))
                  ops)
              ops;
            let applieds =
              [] :: (if depth >= 2 then match ops with [] -> [] | p :: _ -> [ [ p ] ] else [])
            in
            List.iter
              (fun a ->
                let mid = E.apply state a in
                List.iter
                  (fun a2 ->
                    let left = [ a; a2 ] in
                    List.iter
                      (fun applied ->
                        case ~property:Compact ~state ~applied ~left ~right:[] (fun () ->
                            counts.compact <- counts.compact + 1);
                        List.iter
                          (fun b ->
                            case ~property:Compact ~state ~applied ~left ~right:[ b ] (fun () ->
                                counts.compact <- counts.compact + 1))
                          ops)
                      applieds;
                    if depth >= 2 then
                      let mid2 = E.apply mid a2 in
                      List.iter
                        (fun a3 ->
                          case ~property:Compact ~state ~left:[ a; a2; a3 ] ~right:[] (fun () ->
                              counts.compact <- counts.compact + 1))
                        (E.ops mid2))
                  (E.ops mid))
              ops)
          states;
      Ok counts
    with Counterexample cex -> Error (counts, minimize cex)

  let report ?skip ~depth () =
    match check ?skip ~depth () with
    | Ok counts -> { Report.name = E.name; depth; counts; verdict = Pass; expected = None }
    | Error (counts, cex) ->
      { Report.name = E.name; depth; counts; verdict = Fail (render cex); expected = None }
end
