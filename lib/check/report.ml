type property =
  | Tp1
  | Cross
  | Merge_order
  | Merge_nested
  | Compact

let property_name = function
  | Tp1 -> "TP1"
  | Cross -> "cross-convergence"
  | Merge_order -> "merge-order"
  | Merge_nested -> "merge-nested"
  | Compact -> "compaction-equivalence"

let property_doc = function
  | Tp1 -> "apply(apply s a)(IT b a) = apply(apply s b)(IT a b) under both tie winners"
  | Cross -> "Control.cross makes concurrent sequences converge under both serialization ties"
  | Merge_order -> "Workspace.merge_child matches the control algorithm's merge, deterministically"
  | Merge_nested -> "a child that merged a grandchild merges into the parent like the flattened log"
  | Compact ->
    "compact is apply-equivalent, merges identically (states and digests) with compaction on or \
     off, and commutes implies identity transforms both ways"

type counts =
  { mutable tp1 : int
  ; mutable cross : int
  ; mutable merge_order : int
  ; mutable merge_nested : int
  ; mutable compact : int
  }

let zero_counts () = { tp1 = 0; cross = 0; merge_order = 0; merge_nested = 0; compact = 0 }
let total c = c.tp1 + c.cross + c.merge_order + c.merge_nested + c.compact

type counterexample =
  { property : property
  ; state : string
  ; applied : string list  (** parent ops (merge properties) *)
  ; left : string list
  ; right : string list
  ; nested : string list  (** grandchild ops (merge-nested) *)
  ; selector : string  (** which tie winner / policy exposed it *)
  ; exn : string option  (** totality violation: the exception raised *)
  ; ops_total : int
  ; shrink_steps : int
  ; detail : string  (** expected-vs-got states, or the raise site *)
  }

type verdict =
  | Pass
  | Fail of counterexample

type t =
  { name : string
  ; depth : int
  ; counts : counts
  ; verdict : verdict
  ; expected : string option
        (** set when the failure matches a documented known issue in the
            registry: the issue's reason.  An expected failure does not gate. *)
  }

let passed t = match (t.verdict, t.expected) with Pass, _ -> true | Fail _, reason -> reason <> None

let pp_seq name ppf = function
  | [] -> ()
  | ops ->
    Format.fprintf ppf "@,%-8s = [%s]" name (String.concat "; " ops)

let pp_counterexample ppf c =
  Format.fprintf ppf "@[<v 2>%s%s violated — minimized counterexample (%d op%s, %d shrink step%s):"
    (property_name c.property)
    (match c.exn with None -> "" | Some _ -> " (totality)")
    c.ops_total
    (if c.ops_total = 1 then "" else "s")
    c.shrink_steps
    (if c.shrink_steps = 1 then "" else "s");
  Format.fprintf ppf "@,%-8s = %s" "state" c.state;
  pp_seq "applied" ppf c.applied;
  pp_seq "left" ppf c.left;
  pp_seq "right" ppf c.right;
  pp_seq "nested" ppf c.nested;
  Format.fprintf ppf "@,%-8s = %s" "under" c.selector;
  (match c.exn with
  | Some e -> Format.fprintf ppf "@,%-8s = %s" "raised" e
  | None -> ());
  if c.detail <> "" then Format.fprintf ppf "@,%s" c.detail;
  Format.fprintf ppf "@]"

let pp ppf t =
  match (t.verdict, t.expected) with
  | Pass, _ ->
    Format.fprintf ppf "%-10s PASS  depth %d: %d cases (TP1 %d, cross %d, merge %d+%d, compact %d)"
      t.name t.depth (total t.counts) t.counts.tp1 t.counts.cross t.counts.merge_order
      t.counts.merge_nested t.counts.compact
  | Fail c, Some reason ->
    (* counts here cover the properties still checked once the expected
       failure's property was skipped *)
    Format.fprintf ppf
      "@[<v>%-10s XFAIL depth %d: %d cases elsewhere (TP1 %d, cross %d, merge %d+%d, compact %d) — \
       documented: %s@,%a@]"
      t.name t.depth (total t.counts) t.counts.tp1 t.counts.cross t.counts.merge_order
      t.counts.merge_nested t.counts.compact reason pp_counterexample c
  | Fail c, None ->
    Format.fprintf ppf "@[<v>%-10s FAIL  depth %d after %d cases@,%a@]" t.name t.depth
      (total t.counts) pp_counterexample c
