(** DetSan — the determinism sanitizer.

    Watches a live Spawn/Merge program through the runtime's and the
    workspace's sanitizer hooks ({!Sm_core.Runtime.Sanitizer_hook},
    {!Sm_mergeable.Workspace.Sanitizer_hook} — the same near-zero-cost
    gating as {!Sm_obs} tracing) and reports the patterns that break the
    paper's determinism guarantee, each with task provenance:

    - {b nondet-merge} — [merge_any] / [merge_any_from_set] on a path that
      feeds a digested workspace: the result depends on scheduling.
    - {b key-in-task} — a workspace key minted while tasks are running: the
      exact pitfall {!Sm_core.Detcheck} documents (re-minted keys make
      digests incomparable across runs).
    - {b unmerged-children} — a task body returned with children still
      attached, leaving the merge to the implicit MergeAll.
    - {b op-after-digest} — an operation recorded on a workspace after it
      was digested: the digest missed the final state.

    Hazards are advisory: a program can be non-deterministic by design
    (servers, interactive input — the paper's own [merge_any] use case).
    DetSan tells you {e where} the determinism claim stops holding;
    {!Sm_core.Detcheck.deterministic_explained} tells you {e that} it
    stopped. *)

type hazard =
  | Nondet_merge of
      { task : string
      ; prim : string  (** ["merge_any"] or ["merge_any_from_set"] *)
      }
  | Key_minted_in_task of
      { key : string
      ; tasks : string list  (** tasks live at minting time *)
      }
  | Unmerged_children of
      { task : string
      ; children : string list
      }
  | Op_after_digest of { key : string }

val pp_hazard : Format.formatter -> hazard -> unit

val hazard_tag : hazard -> string
(** Stable short tag ("nondet-merge", "key-in-task", ...) for CLI summaries
    and tests. *)

val hazard_tags : string list
(** The whole taxonomy, one tag per hazard class — what the static analyzer
    ([Sm_lint]) must provide a twin finding for, and what the agreement
    harness iterates when checking static coverage of dynamic hazards. *)

val observe : (unit -> 'a) -> 'a * hazard list
(** Install the hooks, run the thunk (typically one or more
    {!Sm_core.Runtime.run} / [Coop.run] calls), uninstall, and return the
    deduplicated hazards in first-occurrence order.  Process-global and
    exclusive: concurrent observations serialize on an internal lock. *)

val run :
  ?domains:int -> ?executor:Sm_core.Executor.t -> (Sm_core.Runtime.ctx -> unit) -> hazard list * string
(** Run one program threaded under observation — {e without} the explicit
    final [merge_all] the {!Sm_core.Detcheck} harness inserts, so
    children the program itself left unmerged are reported — and digest the
    root workspace after the run.  Returns (hazards, digest). *)
