module Rt = Sm_core.Runtime
module Ws = Sm_mergeable.Workspace

type hazard =
  | Nondet_merge of
      { task : string
      ; prim : string
      }
  | Key_minted_in_task of
      { key : string
      ; tasks : string list
      }
  | Unmerged_children of
      { task : string
      ; children : string list
      }
  | Op_after_digest of
      { key : string
      }

let pp_hazard ppf = function
  | Nondet_merge { task; prim } ->
    Format.fprintf ppf
      "non-deterministic merge: task %s called %s — the merged result depends on scheduling; any \
       digest downstream of it is not reproducible (use merge_all / merge_all_from_set, or \
       record/replay a Trace)"
      task prim
  | Key_minted_in_task { key; tasks } ->
    Format.fprintf ppf
      "workspace key %S minted while task%s %s running — re-minting keys per run changes key \
       identities and makes digests incomparable; create keys once at module level (see Detcheck)"
      key
      (if List.length tasks = 1 then "" else "s")
      (String.concat ", " tasks)
  | Unmerged_children { task; children } ->
    Format.fprintf ppf
      "task %s finished with unmerged child%s %s — they are merged by the implicit MergeAll, so \
       the merge point is invisible in the code; merge explicitly before returning"
      task
      (if List.length children = 1 then "" else "ren")
      (String.concat ", " children)
  | Op_after_digest { key } ->
    Format.fprintf ppf
      "operation recorded on %S after its workspace was digested — the digest was taken too \
       early and does not cover the final state"
      key

let hazard_tag = function
  | Nondet_merge _ -> "nondet-merge"
  | Key_minted_in_task _ -> "key-in-task"
  | Unmerged_children _ -> "unmerged-children"
  | Op_after_digest _ -> "op-after-digest"

(* The closed taxonomy, one tag per constructor — the shared vocabulary
   static twins (Sm_lint findings) key on.  Keep in sync with [hazard]. *)
let hazard_tags = [ "nondet-merge"; "key-in-task"; "unmerged-children"; "op-after-digest" ]

(* At most one observation at a time: the hooks are process-global.  Nested
   or concurrent [observe] calls would silently steal each other's events. *)
let busy = Mutex.create ()

let observe f =
  Mutex.lock busy;
  let mu = Mutex.create () in
  let hazards = ref [] in
  (* reverse order *)
  let live = ref [] in
  (* task names currently between start and body end *)
  let digested = ref [] in
  (* ws uids already digested *)
  let protected g =
    Mutex.lock mu;
    Fun.protect ~finally:(fun () -> Mutex.unlock mu) g
  in
  (* A hazard is exactly the moment the flight recorder exists for: freeze
     every ring as the post-mortem before the run unwinds any further. *)
  let add h =
    Sm_obs.Flight_recorder.trigger ~reason:(Format.asprintf "detsan: %a" pp_hazard h);
    protected (fun () -> hazards := h :: !hazards)
  in
  Rt.Sanitizer_hook.install (function
    | Rt.Sanitizer_hook.Nondet_merge { task; prim } -> add (Nondet_merge { task; prim })
    | Rt.Sanitizer_hook.Task_started { task } -> protected (fun () -> live := task :: !live)
    | Rt.Sanitizer_hook.Task_finished { task; unmerged } ->
      protected (fun () -> live := List.filter (fun t -> not (String.equal t task)) !live);
      if unmerged <> [] then add (Unmerged_children { task; children = unmerged }));
  Ws.Sanitizer_hook.install (function
    | Ws.Sanitizer_hook.Key_created { key } ->
      let tasks = protected (fun () -> List.rev !live) in
      if tasks <> [] then add (Key_minted_in_task { key; tasks })
    | Ws.Sanitizer_hook.Updated { ws_id; key } ->
      if protected (fun () -> List.mem ws_id !digested) then add (Op_after_digest { key })
    | Ws.Sanitizer_hook.Digested { ws_id } ->
      protected (fun () -> if not (List.mem ws_id !digested) then digested := ws_id :: !digested));
  let result =
    Fun.protect
      ~finally:(fun () ->
        Rt.Sanitizer_hook.uninstall ();
        Ws.Sanitizer_hook.uninstall ();
        Mutex.unlock busy)
      f
  in
  (* First occurrence of each distinct hazard, in observation order: a
     merge_any in a loop is one finding, not a thousand. *)
  let seen = Hashtbl.create 16 in
  let dedup =
    List.filter
      (fun h ->
        let k = Format.asprintf "%a" pp_hazard h in
        if Hashtbl.mem seen k then false
        else begin
          Hashtbl.add seen k ();
          true
        end)
      (List.rev !hazards)
  in
  (result, dedup)

let run ?domains ?executor program =
  let digest, hazards =
    observe (fun () ->
        let ws =
          Rt.run ?domains ?executor (fun ctx ->
              program ctx;
              Rt.workspace ctx)
        in
        Ws.digest ws)
  in
  (hazards, digest)
