(** Bounded enumeration of an OT operation module — the raw material of the
    property engine.

    An {!S} extends {!Sm_ot.Op_sig.S} with everything {!Checker.Make} needs
    to verify the transform matrix exhaustively at a size budget and to
    minimize what it finds: state and operation enumerators, and an
    op shrinker.  Instances for the repo's nine operation modules live in
    {!Instances}; user-defined mergeable types plug in the same way. *)

module type S = sig
  include Sm_ot.Op_sig.S

  val name : string
  (** Registry name, conventionally the [lib/mergeable] wrapper's
      ("mcounter", "mtext", ...). *)

  val states : depth:int -> state list
  (** Enumerated start states, smallest first.  [depth] scales the size
      budget (container sizes up to [depth + 1], roughly); [depth = 0] must
      still return at least one state.  The checker reports the {e first}
      failing state, so ordering small-to-large is what keeps raw
      counterexamples readable before shrinking even starts. *)

  val ops : state -> op list
  (** Every interesting operation {e valid on} [state] — all positions, all
      conflict classes, at least two distinct inserted values so value ties
      are exercised.  [apply state op] must not raise for any returned op. *)

  val shrink_op : op -> op list
  (** Strictly smaller candidate replacements (shorter payload, lower
      position); [[]] when the op is atomic.  Must be well-founded —
      iterating [shrink_op] from any op terminates — because the shrinker
      chases candidates greedily.  Candidates may be invalid on a given
      state; the checker discards those. *)
end
