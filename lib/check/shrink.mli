(** Greedy counterexample minimization over scenarios (lists of operation
    sequences). *)

val minimize :
  ?max_steps:int ->
  fails:('a list list -> bool) ->
  shrink_elt:('a -> 'a list) ->
  'a list list ->
  'a list list * int
(** [minimize ~fails ~shrink_elt scenario] hill-climbs to a smaller scenario
    on which [fails] still holds, by dropping single operations and by
    replacing single operations with [shrink_elt] candidates; returns the
    fixpoint and the number of accepted shrink steps.  [fails] must return
    [false] (not raise) on candidates it considers invalid.  [shrink_elt]
    must be well-founded; [max_steps] (default 500) is the backstop if it is
    not.  [scenario] itself is expected to fail — the result is only
    meaningful under that contract. *)
