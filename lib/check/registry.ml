type known_issue =
  { id : string
  ; property : Report.property
  ; reason : string
  }

type entry =
  { enum : (module Enum.S)
  ; known : known_issue list
  }

let name e =
  let module E = (val e.enum : Enum.S) in
  E.name

let enum e = e.enum
let known_issues e = e.known

(* Triage outcome (ISSUE 3, satellite 1): running the checker over the full
   matrix at depth 2 — TP1 both winners, cross under both serialization
   ties, workspace merge order and nested merges — found exactly one
   divergence: [Op_queue]'s transform is the identity, so two concurrent
   [Push]es land in whichever order the local side applied them (minimal
   counterexample: state <>, left [push 7], right [push 8]).  That is the
   module's documented intention — op_queue.mli defines the relative order
   of concurrent pushes to be the deterministic merge serialization order,
   which only ever transforms in one fixed direction and therefore still
   converges (mqueue's merge-order and nested-merge checks pass).  Encoded
   below as the expected issue "queue-push-order" for both pairwise
   properties; test_ot_exhaustive.ml pins the counterexample as a
   regression test.  The other eight modules are violation-free. *)
let queue_push_order =
  let reason =
    "concurrent pushes are ordered by the deterministic merge serialization, not by pairwise \
     transform (Op_queue's documented intention); serialization itself converges"
  in
  [ { id = "queue-push-order"; property = Report.Tp1; reason }
  ; { id = "queue-push-order"; property = Report.Cross; reason }
  ]

let entries : entry list ref =
  ref
    (List.map
       (fun enum ->
         let module E = (val enum : Enum.S) in
         let known = if String.equal E.name "mqueue" then queue_push_order else [] in
         { enum; known })
       Instances.all)

let register ?(known = []) enum = entries := !entries @ [ { enum; known } ]

let all () = !entries
let names () = List.map name (all ())

let find want =
  (* Accept "mtext", "text", or "Op_text"-ish spellings. *)
  let norm s =
    let s = String.lowercase_ascii s in
    let s = if String.length s > 3 && String.sub s 0 3 = "op_" then String.sub s 3 (String.length s - 3) else s in
    if String.length s > 1 && s.[0] = 'm' then String.sub s 1 (String.length s - 1) else s
  in
  List.find_opt (fun e -> String.equal (norm (name e)) (norm want)) (all ())

let match_known e (property : Report.property) =
  List.find_opt (fun k -> k.property = property) e.known

let run ?mutation ~depth e =
  let enum = match mutation with None -> e.enum | Some m -> Mutate.wrap m e.enum in
  let module E = (val enum : Enum.S) in
  let module C = Checker.Make (E) in
  match mutation with
  (* A mutated transform failing is the desired outcome, never "expected":
     only the pristine matrix consults the known-issue list. *)
  | Some _ -> C.report ~depth ()
  | None ->
    (* A failure matching a known issue becomes the expected counterexample
       and its property is skipped on a re-run, so the module's remaining
       properties still get their full enumeration (e.g. mqueue's merge
       checks keep running behind its expected TP1 divergence). *)
    let rec go skip expected =
      match C.check ~skip ~depth () with
      | Ok counts -> (
        match expected with
        | None -> { Report.name = E.name; depth; counts; verdict = Pass; expected = None }
        | Some (cex, k) ->
          { Report.name = E.name
          ; depth
          ; counts
          ; verdict = Fail (C.render cex)
          ; expected = Some (Printf.sprintf "%s: %s" k.id k.reason)
          })
      | Error (counts, cex) -> (
        match match_known e cex.property with
        | Some k when not (List.mem cex.property skip) ->
          go (cex.property :: skip) (match expected with None -> Some (cex, k) | some -> some)
        | _ ->
          { Report.name = E.name; depth; counts; verdict = Fail (C.render cex); expected = None })
    in
    go [] None
