(* Greedy scenario minimization.  A scenario is a list of operation
   sequences (parent ops, left child, right child, grandchild); [fails]
   decides whether a candidate still exhibits the violation.  Two moves:
   drop one element anywhere, or replace one element by a [shrink_elt]
   candidate.  First-improvement hill climbing to a fixpoint — not optimal,
   but counterexamples here start small (bounded enumeration) and the point
   is a 2-op report instead of a 2-sequence wall of ops. *)

let drop_nth xs n = List.filteri (fun i _ -> i <> n) xs

let replace_nth xs n x = List.mapi (fun i y -> if i = n then x else y) xs

(* Every scenario obtained by dropping a single element from a single
   sequence. *)
let drops scenario =
  List.concat
    (List.mapi
       (fun si seq -> List.mapi (fun oi _ -> replace_nth scenario si (drop_nth seq oi)) seq)
       scenario)

(* Every scenario obtained by replacing a single element with one of its
   shrink candidates. *)
let replacements ~shrink_elt scenario =
  List.concat
    (List.mapi
       (fun si seq ->
         List.concat
           (List.mapi
              (fun oi op ->
                List.map (fun op' -> replace_nth scenario si (replace_nth seq oi op')) (shrink_elt op))
              seq))
       scenario)

let minimize ?(max_steps = 500) ~fails ~shrink_elt scenario =
  let steps = ref 0 in
  let rec go scenario =
    if !steps >= max_steps then scenario
    else begin
      (* Drops first: removing an op is a bigger win than shrinking one, and
         drops strictly reduce size so they cannot cycle. *)
      let candidates = drops scenario @ replacements ~shrink_elt scenario in
      match List.find_opt fails candidates with
      | Some smaller ->
        incr steps;
        go smaller
      | None -> scenario
    end
  in
  let result = go scenario in
  (result, !steps)
