(* The nine operation modules of lib/ot, instantiated for bounded checking.

   Element choices mirror the exhaustive test suite: small canonical states
   (sizes 0 .. depth+1, smallest first) and op enumerations that hit every
   position and both conflict classes (two distinct insert values so value
   ties are real).  [depth = 2] reproduces the historical test_ot_exhaustive
   spaces exactly. *)

module L = Sm_ot.Op_list
module Side = Sm_ot.Side

module Str_elt = struct
  type t = string

  let equal = String.equal
  let compare = String.compare
  let pp ppf s = Format.fprintf ppf "%S" s
end

module Int_elt = struct
  type t = int

  let equal = Int.equal
  let compare = Int.compare
  let pp = Format.pp_print_int
end

(* sizes 0 .. depth+1 *)
let sizes ~depth = List.init (max 1 depth + 2) Fun.id

module Counter = struct
  include Sm_ot.Op_counter

  let name = "mcounter"
  let states ~depth = if depth <= 0 then [ 0 ] else [ 0; 2 ]
  let ops _ = [ add 1; add (-1); add 3 ]
  let shrink_op (Add n) = if n > 1 then [ add 1 ] else []
end

module Register = struct
  include Sm_ot.Op_register.Make (Str_elt)

  let name = "mregister"
  let states ~depth = if depth <= 0 then [ "a" ] else [ "a"; "b" ]

  (* [assign "a"] re-asserts a current value somewhere in the space — the
     idempotence edge. *)
  let ops _ = [ assign "x"; assign "y"; assign "a" ]
  let shrink_op (Assign s) = if String.length s > 1 then [ assign (String.sub s 0 1) ] else []
end

module Set_e = struct
  include Sm_ot.Op_set.Make (Int_elt)

  let name = "mset"

  let states ~depth =
    List.map (fun n -> Elt_set.of_list (List.init n Fun.id)) (sizes ~depth)

  (* adds/removes of present and absent elements *)
  let ops state =
    let n = Elt_set.cardinal state in
    List.concat_map (fun e -> [ add e; remove e ]) (List.init (n + 2) Fun.id)

  let shrink_op = function
    | Add e -> if e > 0 then [ add 0 ] else []
    | Remove e -> if e > 0 then [ remove 0 ] else []
end

module Map_e = struct
  include Sm_ot.Op_map.Make (Int_elt) (Str_elt)

  let name = "mmap"

  let states ~depth =
    List.map
      (fun n ->
        List.fold_left
          (fun m k -> Key_map.add k (String.make 1 (Char.chr (Char.code 'a' + k))) m)
          Key_map.empty (List.init n Fun.id))
      (sizes ~depth)

  let ops state =
    let n = Key_map.cardinal state in
    List.concat_map (fun k -> [ put k "x"; put k "y"; remove k ]) (List.init (n + 2) Fun.id)

  let shrink_op = function
    | Put (k, v) ->
      (if k > 0 then [ put 0 v ] else []) @ if String.length v > 1 then [ put k "x" ] else []
    | Remove k -> if k > 0 then [ remove 0 ] else []
end

module List_e = struct
  include L.Make (Str_elt)

  let name = "mlist"
  let states ~depth = List.map (fun n -> List.init n string_of_int) (sizes ~depth)

  let ops state =
    let n = List.length state in
    List.concat
      [ List.concat_map (fun i -> [ ins i "x"; ins i "y" ]) (List.init (n + 1) Fun.id)
      ; List.map del (List.init n Fun.id)
      ; List.map (fun i -> set i "z") (List.init n Fun.id)
      ]

  let shrink_op = function
    | Ins (i, s) ->
      (if i > 0 then [ ins (i - 1) s ] else [])
      @ if String.length s > 1 then [ ins i (String.sub s 0 1) ] else []
    | Del i -> if i > 0 then [ del (i - 1) ] else []
    | Set (i, s) -> if i > 0 then [ set (i - 1) s ] else []
end

module Queue_e = struct
  include Sm_ot.Op_queue.Make (Int_elt)

  let name = "mqueue"
  let states ~depth = List.map (fun n -> List.init n Fun.id) (sizes ~depth)
  let ops _ = [ push 7; push 8; pop ]
  let shrink_op = function Push n -> if n <> 7 then [ push 7 ] else [] | Pop -> []
end

module Stack_e = struct
  include Sm_ot.Op_stack.Make (Int_elt)

  let name = "mstack"
  let states ~depth = List.map (fun n -> List.init n Fun.id) (sizes ~depth)

  let ops state =
    let n = List.length state in
    List.concat
      [ List.map (fun i -> Push_at (i, 77)) (List.init (n + 1) Fun.id)
      ; List.map (fun i -> Pop_at i) (List.init n Fun.id)
      ]

  let shrink_op = function
    | Push_at (i, x) -> if i > 0 then [ Push_at (i - 1, x) ] else []
    | Pop_at i -> if i > 0 then [ Pop_at (i - 1) ] else []
end

module Text = struct
  include Sm_ot.Op_text

  let name = "mtext"

  let states ~depth =
    (* Built through [of_string], so the enumerator exercises whichever
       representation the SM_ROPE switch selects — the rope/flat battery
       flips the switch and reruns the same state space. *)
    let all = [ ""; "a"; "ab"; "abcd"; "abcdef" ] in
    List.filteri (fun i _ -> i < max 1 depth + 2) (List.map Sm_ot.Op_text.of_string all)

  let ops state =
    let n = Sm_ot.Op_text.length state in
    List.concat
      [ List.concat_map (fun p -> [ ins p "X"; ins p "YY" ]) (List.init (n + 1) Fun.id)
      ; List.concat_map
          (fun p ->
            List.filter_map (fun l -> if p + l <= n then Some (Del (p, l)) else None) [ 1; 2; 3 ])
          (List.init n Fun.id)
      ]

  let shrink_op = function
    | Ins (p, s) ->
      (if p > 0 then [ Ins (p - 1, s) ] else [])
      @ if String.length s > 1 then [ ins p (String.sub s 0 1) ] else []
    | Del (p, l) -> (if p > 0 then [ Del (p - 1, l) ] else []) @ if l > 1 then [ Del (p, 1) ] else []
end

module Tree = struct
  include Sm_ot.Op_tree.Make (Str_elt)

  let name = "mtree"

  let states ~depth =
    let all =
      [ []
      ; [ leaf "a" ]
      ; [ branch "a" [ leaf "x" ]; leaf "b" ]
      ; [ branch "a" [ leaf "x"; leaf "y" ]; leaf "b"; leaf "c" ]
      ]
    in
    List.filteri (fun i _ -> i < max 1 depth + 2) all

  let rec node_paths ?(prefix = []) forest =
    List.concat
      (List.mapi
         (fun i n ->
           let here = List.rev (i :: prefix) in
           here :: node_paths ~prefix:(i :: prefix) n.children)
         forest)

  let rec gap_paths ?(prefix = []) forest =
    let here = List.init (List.length forest + 1) (fun i -> List.rev (i :: prefix)) in
    here @ List.concat (List.mapi (fun i n -> gap_paths ~prefix:(i :: prefix) n.children) forest)

  let ops state =
    List.concat
      [ List.map (fun p -> insert p (leaf "n")) (gap_paths state)
      ; List.map delete (node_paths state)
      ; List.map (fun p -> relabel p "r") (node_paths state)
      ]

  (* Shrinking a path component toward 0 keeps it a plausible address;
     shortening the path retargets an ancestor. *)
  let shrink_path p =
    (match List.rev p with
    | _ :: tl when tl <> [] -> [ List.rev tl ]  (* shorten: retarget the parent *)
    | _ -> [])
    @ List.concat
        (List.mapi
           (fun i c -> if c > 0 then [ List.mapi (fun j d -> if j = i then c - 1 else d) p ] else [])
           p)

  let shrink_op = function
    | Insert (p, n) ->
      (if n.children <> [] then [ insert p (leaf n.label) ] else [])
      @ List.map (fun p' -> insert p' n) (shrink_path p)
    | Delete p -> List.map delete (shrink_path p)
    | Relabel (p, l) -> List.map (fun p' -> relabel p' l) (shrink_path p)
end

let all : (module Enum.S) list =
  [ (module Counter)
  ; (module Register)
  ; (module Set_e)
  ; (module Map_e)
  ; (module List_e)
  ; (module Queue_e)
  ; (module Stack_e)
  ; (module Text)
  ; (module Tree)
  ]
