(** Rendered outcomes of a {!Checker} run — everything the CLI and the
    registry need, with states and operations already pretty-printed so no
    type information escapes the per-module functor. *)

type property =
  | Tp1  (** pairwise convergence under an explicit tie winner *)
  | Cross  (** sequence convergence through {!Sm_ot.Control.Make.cross} *)
  | Merge_order
      (** {!Sm_mergeable.Workspace.merge_child} over two concurrent children
          agrees with the pure control algorithm and digests identically on
          recomputation *)
  | Merge_nested
      (** a three-level task tree (parent / child / grandchild) merged
          stepwise through the workspace agrees with the flattened
          control-algorithm merge *)
  | Compact
      (** [compact] produces an apply-equivalent journal on every enumerated
          state; workspace merges with compaction on vs off yield equal
          states and digests; and [commutes a b] implies [transform] is the
          identity in both directions under every tie policy (the contract
          the {!Sm_ot.Control.Make} fast paths rely on) *)

val property_name : property -> string
val property_doc : property -> string

type counts =
  { mutable tp1 : int
  ; mutable cross : int
  ; mutable merge_order : int
  ; mutable merge_nested : int
  ; mutable compact : int
  }

val zero_counts : unit -> counts
val total : counts -> int

type counterexample =
  { property : property
  ; state : string
  ; applied : string list
  ; left : string list
  ; right : string list
  ; nested : string list
  ; selector : string
  ; exn : string option
  ; ops_total : int
  ; shrink_steps : int
  ; detail : string
  }

type verdict =
  | Pass
  | Fail of counterexample

type t =
  { name : string
  ; depth : int
  ; counts : counts
  ; verdict : verdict
  ; expected : string option
  }

val passed : t -> bool
(** [Pass], or a failure documented as expected in the registry. *)

val pp_counterexample : Format.formatter -> counterexample -> unit
val pp : Format.formatter -> t -> unit
