(** First-class registry of checkable operation modules — what gives
    [sm-check ot --all] and [--type NAME] something to iterate, and where a
    deliberate, paper-faithful divergence would be documented as an expected
    failure instead of breaking the gate. *)

type known_issue =
  { id : string  (** short stable tag, e.g. ["stack-top-order"] *)
  ; property : Report.property  (** which check it is allowed to fail *)
  ; reason : string  (** why the behavior is intended, one line *)
  }

type entry

val name : entry -> string

val enum : entry -> (module Enum.S)
(** The entry's enumerable op module — what static analyses (e.g.
    [Sm_lint.Matrix]) derive per-module facts from. *)

val known_issues : entry -> known_issue list
(** The entry's documented expected failures; static analyses use them to
    pin findings the same way {!run} turns matching failures into XFAILs. *)

val register : ?known:known_issue list -> (module Enum.S) -> unit
(** Append a user-defined mergeable type to the registry (the paper's
    extension point, checkable like the built-ins). *)

val all : unit -> entry list
(** The nine built-in modules (registration order) plus anything
    {!register}ed. *)

val names : unit -> string list

val find : string -> entry option
(** Lenient lookup: ["mtext"], ["text"] and ["Op_text"] all resolve. *)

val run : ?mutation:Mutate.kind -> depth:int -> entry -> Report.t
(** Check one entry.  A failure matching a {!known_issue} comes back with
    [expected] set (so {!Report.passed} holds); mutated runs never consult
    the known-issue list. *)
