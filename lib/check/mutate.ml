type kind =
  | Tie_bias
  | Identity
  | Drop_last
  | Reverse

let all = [ Tie_bias; Identity; Drop_last; Reverse ]

let to_string = function
  | Tie_bias -> "tie-bias"
  | Identity -> "identity"
  | Drop_last -> "drop-last"
  | Reverse -> "reverse"

let of_string = function
  | "tie-bias" -> Some Tie_bias
  | "identity" -> Some Identity
  | "drop-last" -> Some Drop_last
  | "reverse" -> Some Reverse
  | _ -> None

let describe = function
  | Tie_bias ->
    "resolve every tie for the incoming op, ignoring the policy (both transform directions then \
     think they won — the classic published-transform bug)"
  | Identity -> "never rewrite the incoming op (skip index shifting entirely)"
  | Drop_last -> "silently drop the last op of every transform result"
  | Reverse -> "reverse multi-op transform results (split deletes land out of order)"

let mutate_transform kind transform a ~against ~tie =
  match kind with
  | Tie_bias -> transform a ~against ~tie:(Sm_ot.Side.uniform Sm_ot.Side.Incoming)
  | Identity -> [ a ]
  | Drop_last -> (
    match List.rev (transform a ~against ~tie) with [] -> [] | _ :: tl -> List.rev tl)
  | Reverse -> List.rev (transform a ~against ~tie)

let wrap kind (module E : Enum.S) : (module Enum.S) =
  (module struct
    include E

    let name = E.name ^ "+" ^ to_string kind
    let transform = mutate_transform kind E.transform
  end)

let wrap_data (type s o) kind
    (module D : Sm_mergeable.Data.S with type state = s and type op = o) :
    (module Sm_mergeable.Data.S with type state = s and type op = o) =
  (module struct
    include D

    let transform = mutate_transform kind D.transform

    (* A [commutes] hint promises transform-identity in both directions —
       a promise the mutated transform no longer keeps, and the control
       algorithm's fast paths would silently mask the bug.  Disable it. *)
    let commutes _ _ = false
  end)
