(** Seeded transform mutations — deliberate bugs injected into an operation
    module's [transform] so the checker (and its tests, and CI) can prove it
    actually catches violations and minimizes them.  All mutations are
    generic wrappers: they need no knowledge of the op type.

    A mutation is not guaranteed to produce a violation on every module
    ({!Tie_bias} is harmless on tie-free types like the counter); callers
    report "mutation survived" in that case. *)

type kind =
  | Tie_bias  (** every tie resolved for the incoming side, policy ignored *)
  | Identity  (** transform never rewrites — no index shifting *)
  | Drop_last  (** last op of every transform result dropped *)
  | Reverse  (** multi-op results reversed *)

val all : kind list
val to_string : kind -> string
val of_string : string -> kind option
val describe : kind -> string

val wrap : kind -> (module Enum.S) -> (module Enum.S)
(** The same enumeration instance with the mutated [transform] and
    ["name+mutation"] as its name. *)

val wrap_data :
  kind ->
  (module Sm_mergeable.Data.S with type state = 's and type op = 'o) ->
  (module Sm_mergeable.Data.S with type state = 's and type op = 'o)
(** The same mergeable data module with the mutated [transform].  The
    [type_name] is deliberately unchanged so workspace digests of mutated
    and clean runs stay comparable — what the whole-program fuzzer
    ([Sm_fuzz]) relies on for its differential oracle. *)
