(** The OT property engine: bounded-exhaustive verification of one operation
    module's transform matrix, with minimized counterexamples.

    Four properties, per {!Report.property}:

    - {b TP1} — pairwise convergence under both tie winners, the correctness
      condition for OT with a linear history (exactly the Spawn/Merge
      setting; TP2 is out of scope, see {!Sm_ot.Convergence}).
    - {b cross-convergence} — {!Sm_ot.Control.Make.cross} on concurrent
      {e sequences}, under the runtime's serialization policy and its flip.
    - {b merge-order} — two concurrent children merged through the real
      {!Sm_mergeable.Workspace} agree with the pure control algorithm and
      digest identically on recomputation.
    - {b merge-nested} — a parent/child/grandchild tree merged stepwise
      through the workspace equals the flattened control merge, pinning the
      version/base bookkeeping.

    Transform/apply totality rides along: any exception in any enumerated
    case is itself a counterexample (reported with the raising property and
    the exception).

    Every violation is shrunk greedily ({!Shrink}) before being reported:
    single operations are dropped and replaced by {!Enum.S.shrink_op}
    candidates while the violation persists. *)

module Make (E : Enum.S) : sig
  type cex =
    { property : Report.property
    ; state : E.state
    ; applied : E.op list  (** parent's own concurrent ops (merge properties) *)
    ; left : E.op list
    ; right : E.op list
    ; nested : E.op list  (** grandchild log (merge-nested) *)
    ; a_wins : bool  (** TP1 tie winner *)
    ; tie : Sm_ot.Side.policy  (** cross tie policy *)
    ; exn : string option  (** totality violation: the rendered exception *)
    ; shrink_steps : int
    }

  val check :
    ?skip:Report.property list -> depth:int -> unit -> (Report.counts, Report.counts * cex) result
  (** Run every property not in [skip] at [depth]; [Ok] with the case
      counts, or [Error] with the counts reached and the first violation,
      minimized.  Enumeration visits states smallest-first, so the raw
      counterexample is already near the smallest failing state.  [skip] is
      how the registry keeps checking the remaining properties of a module
      with a documented expected failure. *)

  val holds : cex -> bool
  (** Re-evaluate the counterexample's property on its scenario: [false]
      means it still fails — what shrinking must preserve, and what the
      shrinker self-tests assert. *)

  val minimize : cex -> cex
  val render : cex -> Report.counterexample

  val report : ?skip:Report.property list -> depth:int -> unit -> Report.t
  (** {!check} wrapped for the registry/CLI ([expected] left unset). *)
end
